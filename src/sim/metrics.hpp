// Small statistics helpers shared by experiments: online counters, summary
// statistics (mean/min/max/percentiles) and fixed-width table printing so
// every bench binary reports in the same format.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

namespace wfd::sim {

/// Accumulates scalar samples; percentiles computed on demand.
class Summary {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  std::size_t count() const { return samples_.size(); }

  double mean() const {
    if (samples_.empty()) return 0.0;
    double total = 0.0;
    for (double x : samples_) total += x;
    return total / static_cast<double>(samples_.size());
  }

  double min() const {
    if (samples_.empty()) return 0.0;
    order();
    return samples_.front();
  }

  double max() const {
    if (samples_.empty()) return 0.0;
    order();
    return samples_.back();
  }

  /// q in [0,1]; nearest-rank percentile: the smallest sample with at
  /// least ceil(q*n) samples at or below it (q = 0 yields the minimum).
  double percentile(double q) const {
    if (samples_.empty()) return 0.0;
    order();
    const double clamped = std::clamp(q, 0.0, 1.0);
    const auto rank = static_cast<std::size_t>(
        std::ceil(clamped * static_cast<double>(samples_.size())));
    const std::size_t idx = rank == 0 ? 0 : rank - 1;
    return samples_[std::min(idx, samples_.size() - 1)];
  }

  double median() const { return percentile(0.5); }

 private:
  void order() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Fixed-width console table; every experiment binary prints through this so
/// outputs are uniform and diffable.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, int width = 14)
      : headers_(std::move(headers)), width_(width) {}

  void print_header(std::ostream& out = std::cout) const {
    for (const std::string& h : headers_) out << std::setw(width_) << h;
    out << '\n';
    out << std::string(headers_.size() * static_cast<std::size_t>(width_), '-')
        << '\n';
  }

  template <class... Cells>
  void print_row(Cells&&... cells) const {
    ((std::cout << std::setw(width_) << cells), ...);
    std::cout << '\n';
  }

 private:
  std::vector<std::string> headers_;
  int width_;
};

}  // namespace wfd::sim
