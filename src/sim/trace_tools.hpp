// Trace tooling: textual dumps with filtering, per-channel delay
// statistics, and an ASCII timeline of diner phases — the debugging kit
// used while developing the reduction and handy for anyone extending it.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "sim/metrics.hpp"
#include "sim/trace.hpp"
#include "sim/types.hpp"

namespace wfd::sim {

/// Stream a retained trace as text, optionally filtered.
class TraceWriter {
 public:
  using Filter = std::function<bool(const Event&)>;

  /// Write `events` (one line each) to `out`; a null filter passes all.
  static std::size_t write(std::ostream& out, const std::vector<Event>& events,
                           const Filter& filter = nullptr);

  /// Convenience filters.
  static Filter by_kind(EventKind kind);
  static Filter by_process(ProcessId pid);
  static Filter by_time(Time from, Time until);
};

/// Matches kSend/kDeliver pairs per directed channel and summarizes
/// transit times (observer — subscribe before the run).
class DelayStats {
 public:
  void on_event(const Event& event);

  /// Summary for channel src -> dst (empty summary if never used).
  const Summary& channel(ProcessId src, ProcessId dst) const;
  Summary all() const;
  std::size_t matched() const { return matched_; }

 private:
  struct Key {
    ProcessId src;
    ProcessId dst;
    bool operator<(const Key& other) const {
      return src != other.src ? src < other.src : dst < other.dst;
    }
  };
  // kSend carries (pid=src, a=dst); kDeliver carries (pid=dst, a=src).
  // Without message ids in events we approximate FIFO matching per
  // channel, which is exact for per-channel aggregate statistics only in
  // expectation; totals and counts are exact.
  std::map<Key, std::vector<Time>> outstanding_;
  std::map<Key, Summary> stats_;
  Summary empty_;
  std::size_t matched_ = 0;
};

/// ASCII timeline of diner phases for one dining instance: one row per
/// diner, one column per time bucket; characters: '.' thinking,
/// 'h' hungry, 'E' eating, 'x' exiting, '#' crashed.
class DinerTimeline {
 public:
  DinerTimeline(std::uint64_t tag, std::vector<ProcessId> members,
                Time bucket_width);

  void on_event(const Event& event);

  /// Render rows up to `until` (call after the run).
  std::string render(Time until) const;

 private:
  struct Change {
    Time time;
    std::uint8_t state;  // 0..3 diner phases, 4 = crashed
  };
  std::uint64_t tag_;
  std::vector<ProcessId> members_;
  Time bucket_;
  std::map<ProcessId, std::vector<Change>> changes_;
};

}  // namespace wfd::sim
