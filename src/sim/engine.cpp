#include "sim/engine.hpp"

#include <algorithm>
#include <stdexcept>

namespace wfd::sim {

Engine::Engine(EngineConfig config)
    : config_(config),
      rng_(config.seed),
      trace_(config.trace_capacity, config.trace_retain_kinds) {
  if (config.metrics != nullptr) {
    m_steps_ = config.metrics->counter("sim.steps");
    m_sent_ = config.metrics->counter("sim.sent");
    m_delivered_ = config.metrics->counter("sim.delivered");
    m_dropped_ = config.metrics->counter("sim.dropped");
    m_crashes_ = config.metrics->counter("sim.crashes");
    m_lost_ = config.metrics->counter("sim.lost");
    m_duplicated_ = config.metrics->counter("sim.duplicated");
    m_retransmitted_ = config.metrics->counter("sim.retransmitted");
    metrics_ = std::make_unique<obs::Scope>(*config.metrics);
    trace_.bind_metrics(config.metrics);
  }
}

Engine::~Engine() { flush_metrics(); }

void Engine::flush_metrics() {
  if (!metrics_) return;
  metrics_->add(m_steps_, stats_.steps - flushed_.steps);
  metrics_->add(m_sent_, stats_.messages_sent - flushed_.messages_sent);
  metrics_->add(m_delivered_,
                stats_.messages_delivered - flushed_.messages_delivered);
  metrics_->add(m_dropped_,
                stats_.messages_dropped - flushed_.messages_dropped);
  metrics_->add(m_crashes_, stats_.crashes - flushed_.crashes);
  metrics_->add(m_lost_, stats_.messages_lost - flushed_.messages_lost);
  metrics_->add(m_duplicated_,
                stats_.messages_duplicated - flushed_.messages_duplicated);
  metrics_->add(m_retransmitted_, stats_.messages_retransmitted -
                                      flushed_.messages_retransmitted);
  flushed_ = stats_;
}

ProcessId Engine::add_process(std::unique_ptr<Process> process) {
  if (initialized_) throw std::logic_error("add_process after init");
  const ProcessId pid = static_cast<ProcessId>(processes_.size());
  process->id_ = pid;
  processes_.push_back(std::move(process));
  // SoA mode shares one transit store; materializing a CalendarQueue per
  // destination here would reintroduce the per-process footprint it avoids.
  if (config_.transit == TransitKind::kCalendar) inbound_.emplace_back();
  crashed_.push_back(false);
  crash_at_.push_back(kNever);
  return pid;
}

void Engine::set_delay_model(std::unique_ptr<DelayModel> model) {
  delay_ = std::move(model);
}

void Engine::set_scheduler(std::unique_ptr<Scheduler> scheduler) {
  scheduler_ = std::move(scheduler);
}

void Engine::set_network(NetConfig net) {
  // A disabled config leaves net_ null: send_from stays on the adversary-
  // free path and the run is bit-identical to an engine without this
  // feature.
  if (!net.enabled()) {
    net_.reset();
    return;
  }
  net_ = std::make_unique<NetState>(net, config_.seed);
}

bool Engine::net_cut(ProcessId src, ProcessId dst, Time at) const {
  for (const PartitionWindow& window : net_->config.partitions) {
    if (window.cuts(src, dst, at)) return true;
  }
  return false;
}

bool Engine::net_drops(ProcessId src, ProcessId dst) {
  // Partition cuts are deterministic (no draw): an active window severing
  // src from dst eats the message regardless of rates.
  if (net_cut(src, dst, now_)) return true;
  return net_->config.loss_rate > 0.0 &&
         net_->rng.chance(net_->config.loss_rate);
}

bool Engine::try_retransmit(ProcessId src, ProcessId dst, Port port,
                            const Payload& payload) {
  // Send-time resolution: the whole retry schedule is decided now, from the
  // adversary's own generator, so the engine's draw sequence and the
  // retransmit-off behavior stay untouched. Attempt k re-offers the message
  // to the channel at now + k*retransmit_every; the first attempt the
  // adversary does not eat goes into transit with a fresh delay draw from
  // that instant. Recovered messages are not re-duplicated.
  const NetConfig& net = net_->config;
  Time attempt = now_;
  for (std::uint32_t k = 0; k < net.retransmit_max; ++k) {
    attempt += net.retransmit_every;
    ++stats_.messages_retransmitted;
    if (net_cut(src, dst, attempt)) continue;
    if (net.loss_rate > 0.0 && net_->rng.chance(net.loss_rate)) continue;
    const Time transit = delay_uniform_
                             ? delay_min_ + net_->rng.below(delay_span_)
                             : delay_->delay(src, dst, attempt, net_->rng);
    const Time deliver_at = attempt + (transit < 1 ? Time{1} : transit);
    Message& slot =
        soa_ ? soa_->push(deliver_at, dst) : inbound_[dst].push(deliver_at);
    slot.src = src;
    slot.dst = dst;
    slot.port = port;
    slot.payload = payload;
    slot.sent_at = now_;
    slot.seq = next_seq_++;
    return true;
  }
  return false;
}

void Engine::schedule_crash(ProcessId pid, Time at) {
  if (pid >= processes_.size()) throw std::out_of_range("schedule_crash: pid");
  crash_at_[pid] = at;
  // Rescheduling leaves the superseded entry in the band; apply_crashes_due
  // filters entries that no longer match crash_at_. Cancellation (kNever)
  // queues nothing.
  if (at == kNever) return;
  const PendingCrash entry{at, pid};
  pending_crashes_.insert(
      std::upper_bound(pending_crashes_.begin(), pending_crashes_.end(), entry),
      entry);
}

void Engine::init() {
  if (initialized_) return;
  if (!delay_) delay_ = std::make_unique<UniformDelay>(1, 8);
  if (!scheduler_) scheduler_ = std::make_unique<RandomScheduler>();
  Time delay_max = 1;
  delay_uniform_ = delay_->uniform_bounds(delay_min_, delay_max);
  if (delay_uniform_) delay_span_ = delay_max - delay_min_ + 1;
  live_.clear();
  live_pos_.assign(processes_.size(), 0);
  for (ProcessId pid = 0; pid < processes_.size(); ++pid) {
    live_.push_back(pid);
    live_pos_[pid] = pid;
  }
  sender_epoch_.assign(processes_.size(), 0);
  recv_epoch_ = 0;
  if (config_.transit == TransitKind::kSoa && !soa_) {
    soa_ = std::make_unique<SoaTransit>(processes_.size());
  }
  initialized_ = true;
  for (ProcessId pid = 0; pid < processes_.size(); ++pid) {
    Context ctx(*this, pid);
    processes_[pid]->on_init(ctx);
  }
}

void Engine::apply_crashes_due() {
  // Entries pop in (time, pid) order; step() only calls this when the back
  // entry is actually due. Superseded entries (crash rescheduled or
  // cancelled after queueing) no longer match crash_at_ and are skipped.
  while (!pending_crashes_.empty() && pending_crashes_.back().at <= now_) {
    const PendingCrash entry = pending_crashes_.back();
    pending_crashes_.pop_back();
    const ProcessId pid = entry.pid;
    if (crashed_[pid] || crash_at_[pid] != entry.at) continue;
    crashed_[pid] = true;
    ++stats_.crashes;
    // A crashed process never takes another step; pending inbound traffic
    // can never be observed, so discard it now.
    if (soa_) {
      stats_.messages_dropped += soa_->clear_dst(pid);
    } else {
      stats_.messages_dropped += inbound_[pid].size();
      inbound_[pid].clear();
    }
    trace_.emit(EventKind::kCrash, now_, pid);
    const std::size_t pos = live_pos_[pid];
    live_.erase(live_.begin() + static_cast<std::ptrdiff_t>(pos));
    for (std::size_t i = pos; i < live_.size(); ++i) live_pos_[live_[i]] = i;
  }
}

void Engine::deliver_phase_soa(ProcessId pid, Context& ctx) {
  // Same step semantics as deliver_phase below, over the shared SoA store:
  // advance() already scattered everything due onto pid's ready list, in
  // exact (deliver_at, seq) order, so the walk here is a pure list drain —
  // no per-destination calendar probe.
  if (!soa_->has_ready(pid)) return;
  const std::uint64_t epoch = ++recv_epoch_;
  std::uint64_t* const stamps = sender_epoch_.data();
  Process* const proc = processes_[pid].get();
  const Time now = now_;
  std::uint64_t delivered = 0;
  soa_->drain_ready(pid, [&](const InTransit& item) {
    const ProcessId src = item.msg.src;
    if (stamps[src] == epoch) return false;  // defer the duplicate
    stamps[src] = epoch;
    ++delivered;
    trace_.emit(EventKind::kDeliver, now, pid, src, item.msg.port,
                item.msg.payload.kind);
    proc->on_message(ctx, item.msg);
    return true;
  });
  stats_.messages_delivered += delivered;
}

void Engine::deliver_phase(ProcessId pid, Context& ctx) {
  if (soa_) {
    deliver_phase_soa(pid, ctx);
    return;
  }
  // Receive at most one deliverable message per sender (Section 4's step
  // semantics). Later-deadline duplicates from the same sender stay in the
  // queue's deferred band for subsequent steps; reliability is preserved
  // because deadlines are finite and the process steps infinitely often
  // while correct.
  CalendarQueue& queue = inbound_[pid];
  if (queue.size() == 0) return;
  const std::uint64_t epoch = ++recv_epoch_;
  // Hoisted locals: on_message may send (mutating engine state the compiler
  // must otherwise assume aliases these), but never the clock, the stamp
  // array, or the receiving process.
  std::uint64_t* const stamps = sender_epoch_.data();
  Process* const proc = processes_[pid].get();
  const Time now = now_;
  std::uint64_t delivered = 0;
  queue.drain_due(now, [&](const InTransit& item) {
    const ProcessId src = item.msg.src;
    if (stamps[src] == epoch) return false;  // defer the duplicate
    stamps[src] = epoch;
    ++delivered;
    trace_.emit(EventKind::kDeliver, now, pid, src, item.msg.port,
                item.msg.payload.kind);
    proc->on_message(ctx, item.msg);
    return true;
  });
  stats_.messages_delivered += delivered;
}

bool Engine::step() {
  if (!initialized_) init();
  ++now_;
  if (!pending_crashes_.empty() && pending_crashes_.back().at <= now_) {
    apply_crashes_due();
  }
  // Batched delivery: one advance scatters everything due this tick onto
  // the destinations' ready lists (crashes above settle first, so traffic
  // for a just-crashed pid frees instead of scattering). Runs even when no
  // live process remains so the wheel clock stays tick-contiguous.
  if (soa_) soa_->advance(now_);
  if (live_.empty()) return false;

  const ProcessId pid = scheduler_->next(live_, now_, rng_);
  assert(pid < processes_.size() && !crashed_[pid]);

  Context ctx(*this, pid);
  sends_this_step_ = 0;
  deliver_phase(pid, ctx);
  processes_[pid]->on_step(ctx);
  ++stats_.steps;
  trace_.emit(EventKind::kStep, now_, pid);
  return true;
}

std::uint64_t Engine::run(std::uint64_t n) {
  std::uint64_t executed = 0;
  while (executed < n && step()) ++executed;
  flush_metrics();
  return executed;
}

Time Engine::run_to(Time target) {
  // A live engine advances now_ by exactly 1 per executed step, so the
  // remaining distance in ticks is the remaining step budget. Once the
  // population fully crashes, the failed step() has already cost its one
  // tick — exactly as in a cold run(n) — and live_ stays empty forever, so
  // the guard makes every further call a no-op instead of re-paying a tick
  // per call (which would break cold/resumed bit-identity).
  while (now_ < target && !live_.empty()) {
    const std::uint64_t want = target - now_;
    if (run(want) < want) break;  // population fully crashed mid-stretch
  }
  return now_;
}

bool Engine::run_until(const std::function<bool()>& pred,
                       std::uint64_t max_steps, std::uint64_t check_every) {
  if (check_every == 0) check_every = 1;
  for (std::uint64_t executed = 0; executed < max_steps;) {
    if (pred()) {
      flush_metrics();
      return true;
    }
    for (std::uint64_t i = 0; i < check_every && executed < max_steps; ++i) {
      if (!step()) {
        flush_metrics();
        return pred();
      }
      ++executed;
    }
  }
  flush_metrics();
  return pred();
}

std::size_t Engine::in_transit_count() const {
  if (soa_) return soa_->size();
  std::size_t total = 0;
  for (const CalendarQueue& queue : inbound_) total += queue.size();
  return total;
}

void Engine::send_from(ProcessId src, ProcessId dst, Port port,
                       const Payload& payload) {
  if (dst >= processes_.size()) throw std::out_of_range("send: dst");
  if (config_.max_sends_per_step != 0 &&
      ++sends_this_step_ > config_.max_sends_per_step) {
    throw std::logic_error("send bound exceeded in one atomic step");
  }
  ++stats_.messages_sent;
  trace_.emit(EventKind::kSend, now_, src, dst, port, payload.kind);
  if (crashed_[dst]) {
    ++stats_.messages_dropped;
    trace_.emit(EventKind::kDrop, now_, dst, src, port, payload.kind);
    return;
  }
  if (net_ && net_drops(src, dst)) {
    // Opt-in retransmitting channel: a recovered message is in transit (no
    // drop, no loss); only exhausting every attempt drops it for real.
    if (net_->config.retransmit_every > 0 &&
        try_retransmit(src, dst, port, payload)) {
      return;
    }
    // Adversary loss (random or partition cut): dropped at send time, like
    // a crashed destination, but also counted in messages_lost so oracles
    // and experiments can tell the two apart.
    ++stats_.messages_dropped;
    ++stats_.messages_lost;
    trace_.emit(EventKind::kDrop, now_, dst, src, port, payload.kind);
    return;
  }
  Time deliver_at;
  if (delay_uniform_) {
    deliver_at = now_ + delay_min_ + rng_.below(delay_span_);  // min >= 1
  } else {
    const Time transit = delay_->delay(src, dst, now_, rng_);
    deliver_at = now_ + (transit < 1 ? 1 : transit);
  }
  Message& slot =
      soa_ ? soa_->push(deliver_at, dst) : inbound_[dst].push(deliver_at);
  slot.src = src;
  slot.dst = dst;
  slot.port = port;
  slot.payload = payload;
  slot.sent_at = now_;
  slot.seq = next_seq_++;
  if (net_ && net_->config.dup_rate > 0.0 &&
      net_->rng.chance(net_->config.dup_rate)) {
    // Duplicate: a second in-flight copy of the same logical message,
    // landing 1..dup_spread ticks after the original (non-FIFO channels
    // make no ordering promise anyway). It gets its own seq so transit
    // ordering stays a strict total order.
    const Time spread = net_->config.dup_spread < 1 ? 1 : net_->config.dup_spread;
    const Time dup_at = deliver_at + 1 + net_->rng.below(spread);
    Message& copy =
        soa_ ? soa_->push(dup_at, dst) : inbound_[dst].push(dup_at);
    copy.src = src;
    copy.dst = dst;
    copy.port = port;
    copy.payload = payload;
    copy.sent_at = now_;
    copy.seq = next_seq_++;
    ++stats_.messages_duplicated;
  }
}

}  // namespace wfd::sim
