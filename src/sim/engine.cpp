#include "sim/engine.hpp"

#include <stdexcept>

namespace wfd::sim {

Engine::Engine(EngineConfig config)
    : config_(config), rng_(config.seed), trace_(config.trace_capacity) {}

ProcessId Engine::add_process(std::unique_ptr<Process> process) {
  if (initialized_) throw std::logic_error("add_process after init");
  const ProcessId pid = static_cast<ProcessId>(processes_.size());
  process->id_ = pid;
  processes_.push_back(std::move(process));
  inbound_.emplace_back();
  crashed_.push_back(false);
  crash_at_.push_back(kNever);
  return pid;
}

void Engine::set_delay_model(std::unique_ptr<DelayModel> model) {
  delay_ = std::move(model);
}

void Engine::set_scheduler(std::unique_ptr<Scheduler> scheduler) {
  scheduler_ = std::move(scheduler);
}

void Engine::schedule_crash(ProcessId pid, Time at) {
  if (pid >= processes_.size()) throw std::out_of_range("schedule_crash: pid");
  crash_at_[pid] = at;
}

void Engine::init() {
  if (initialized_) return;
  if (!delay_) delay_ = std::make_unique<UniformDelay>(1, 8);
  if (!scheduler_) scheduler_ = std::make_unique<RandomScheduler>();
  live_.clear();
  for (ProcessId pid = 0; pid < processes_.size(); ++pid) live_.push_back(pid);
  sender_seen_.assign(processes_.size(), false);
  initialized_ = true;
  for (ProcessId pid = 0; pid < processes_.size(); ++pid) {
    Context ctx(*this, pid);
    processes_[pid]->on_init(ctx);
  }
}

void Engine::apply_crashes_due() {
  bool any = false;
  for (ProcessId pid = 0; pid < processes_.size(); ++pid) {
    if (!crashed_[pid] && crash_at_[pid] != kNever && now_ >= crash_at_[pid]) {
      crashed_[pid] = true;
      any = true;
      ++stats_.crashes;
      // A crashed process never takes another step; pending inbound traffic
      // can never be observed, so discard it now.
      stats_.messages_dropped += inbound_[pid].size();
      inbound_[pid] = TransitQueue{};
      trace_.emit(Event{now_, EventKind::kCrash, pid, 0, 0, 0});
    }
  }
  if (any) {
    live_.clear();
    for (ProcessId pid = 0; pid < processes_.size(); ++pid) {
      if (!crashed_[pid]) live_.push_back(pid);
    }
  }
}

void Engine::deliver_phase(ProcessId pid, Context& ctx) {
  // Receive at most one deliverable message per sender (Section 4's step
  // semantics). Later-deadline duplicates from the same sender stay queued
  // for subsequent steps; reliability is preserved because deadlines are
  // finite and the process steps infinitely often while correct.
  TransitQueue& queue = inbound_[pid];
  deferred_.clear();
  std::fill(sender_seen_.begin(), sender_seen_.end(), false);
  while (!queue.empty() && queue.top().deliver_at <= now_) {
    InTransit item = queue.top();
    queue.pop();
    const ProcessId src = item.msg.src;
    if (sender_seen_[src]) {
      deferred_.push_back(std::move(item));
      continue;
    }
    sender_seen_[src] = true;
    ++stats_.messages_delivered;
    trace_.emit(Event{now_, EventKind::kDeliver, pid, src, item.msg.port,
                      item.msg.payload.kind});
    processes_[pid]->on_message(ctx, item.msg);
  }
  for (InTransit& item : deferred_) queue.push(std::move(item));
}

bool Engine::step() {
  if (!initialized_) init();
  ++now_;
  apply_crashes_due();
  if (live_.empty()) return false;

  const ProcessId pid = scheduler_->next(live_, now_, rng_);
  assert(pid < processes_.size() && !crashed_[pid]);

  Context ctx(*this, pid);
  sends_this_step_ = 0;
  deliver_phase(pid, ctx);
  processes_[pid]->on_step(ctx);
  ++stats_.steps;
  trace_.emit(Event{now_, EventKind::kStep, pid, 0, 0, 0});
  return true;
}

std::uint64_t Engine::run(std::uint64_t n) {
  std::uint64_t executed = 0;
  while (executed < n && step()) ++executed;
  return executed;
}

bool Engine::run_until(const std::function<bool()>& pred,
                       std::uint64_t max_steps, std::uint64_t check_every) {
  if (check_every == 0) check_every = 1;
  for (std::uint64_t executed = 0; executed < max_steps;) {
    if (pred()) return true;
    for (std::uint64_t i = 0; i < check_every && executed < max_steps; ++i) {
      if (!step()) return pred();
      ++executed;
    }
  }
  return pred();
}

std::size_t Engine::in_transit_count() const {
  std::size_t total = 0;
  for (const TransitQueue& queue : inbound_) total += queue.size();
  return total;
}

void Engine::send_from(ProcessId src, ProcessId dst, Port port,
                       const Payload& payload) {
  if (dst >= processes_.size()) throw std::out_of_range("send: dst");
  if (config_.max_sends_per_step != 0 &&
      ++sends_this_step_ > config_.max_sends_per_step) {
    throw std::logic_error("send bound exceeded in one atomic step");
  }
  ++stats_.messages_sent;
  trace_.emit(Event{now_, EventKind::kSend, src, dst, port, payload.kind});
  if (crashed_[dst]) {
    ++stats_.messages_dropped;
    trace_.emit(Event{now_, EventKind::kDrop, dst, src, port, payload.kind});
    return;
  }
  Message msg{src, dst, port, payload, now_, next_seq_++};
  const Time transit = delay_->delay(src, dst, now_, rng_);
  inbound_[dst].push(InTransit{now_ + (transit < 1 ? 1 : transit), msg});
}

}  // namespace wfd::sim
