// Process abstraction. A process executes atomic steps; in each step it
// receives at most one message from each other process, makes a state
// transition, and sends at most one message to each other process (paper,
// Section 4). The engine enforces the receive bound; the send bound is a
// checked contract on the step body.
#pragma once

#include <cstdint>

#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace wfd::sim {

class Engine;

/// Facade handed to a process during its step. It exposes exactly what the
/// model allows a process to see: its id, the (conceptually inaccessible —
/// use only for timestamps in traces, never for protocol logic that assumes
/// synchrony) tick count, a deterministic RNG stream, and message sending.
/// It deliberately exposes no crash information and no other process state.
class Context {
 public:
  Context(Engine& engine, ProcessId self) : engine_(engine), self_(self) {}

  ProcessId self() const { return self_; }
  Time now() const;
  Rng& rng();
  std::uint32_t process_count() const;

  /// Hand a message to the reliable channel self -> dst.
  void send(ProcessId dst, Port port, const Payload& payload);

  /// Emit a protocol-defined trace event attributed to this process.
  void record(std::uint64_t a, std::uint64_t b = 0, std::uint64_t c = 0);

  /// Emit a typed trace event (diner transitions, detector flips, ...).
  void record_kind(std::uint8_t kind, std::uint64_t a, std::uint64_t b = 0,
                   std::uint64_t c = 0);

  Engine& engine() { return engine_; }

 private:
  Engine& engine_;
  ProcessId self_;
};

/// Base class for simulated processes. Lifecycle: on_init once (after all
/// processes are registered), then for each scheduled step: zero or more
/// on_message calls (the receive phase) followed by exactly one on_step
/// (the state transition + sends).
class Process {
 public:
  virtual ~Process() = default;

  virtual void on_init(Context&) {}
  virtual void on_message(Context&, const Message&) {}
  virtual void on_step(Context&) {}

  ProcessId id() const { return id_; }

 private:
  friend class Engine;
  ProcessId id_ = kNoProcess;
};

}  // namespace wfd::sim
