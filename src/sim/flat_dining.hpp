// Flat struct-of-arrays dining workload: the hygienic ring protocol
// (forks + request tokens + dirty bits, Chandy–Misra style) with a
// timeout-based suspicion override (the <>P-style "eat past a crashed
// neighbor" rule from the wait-free transformation), stored as parallel
// per-field arrays instead of one object per diner.
//
// This is the million-diner core: a diner is ~50 bytes spread across
// per-field vectors, every tick touches the fields in the same order for
// every diner, and all nondeterminism is COUNTER-BASED — a draw is a pure
// hash of (run seed, pid, per-diner counter) and a message delay is a pure
// hash of (run seed, src, per-source send seq). Nothing depends on global
// draw interleaving, so the evolution of a diner is a function of the
// messages it receives and its own counters — the property the sharded
// runner (sharded.hpp) exploits to be bit-identical at any shard count.
//
// Protocol, per live diner per tick (strict program order):
//   1. deliver this tick's messages in canonical (src, seq) order;
//   2. heartbeat both neighbors when tick % hb_every == pid % hb_every;
//   3. act by phase:
//        thinking: flip hungry with probability hunger_pct% (one draw);
//        hungry:   request missing forks (token travels with the request);
//                  eat when every side has (fork || suspected neighbor),
//                  dirtying held forks;
//        eating:   countdown; on exit honor deferred requests (send the
//                  fork, cleaned, where a request token arrived mid-meal).
//   Receiving a request while holding a DIRTY fork outside eating yields
//   the fork immediately (hygiene); a clean fork is never surrendered.
// Forks start dirty at the lower endpoint of each ring edge (diner 0 holds
// both its forks, diner n-1 none), the classic acyclic initial orientation.
//
// Suspicion is a pure timeout: side s is suspected at tick T iff
// T - last_heard[s] > suspect_after (0 disables). With
// suspect_after > hb_every + delay_max a live neighbor is never suspected
// after its first heartbeat lands, so the override only ever fires on
// crashed neighbors — eventual strong accuracy in the sense the paper's
// transformation needs.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace wfd::sim {

enum class FlatPhase : std::uint8_t {
  kThinking = 0,
  kHungry = 1,
  kEating = 2,
  kCrashed = 3,
};

/// Side index: 0 = left edge ((pid+n-1)%n), 1 = right edge (pid).
/// The right edge of p is the left edge of (p+1)%n, so a message sent on
/// side s arrives on side s^1.
enum : std::uint32_t {
  kFlatMsgReq = 1,   ///< fork request (carries the request token)
  kFlatMsgFork = 2,  ///< the fork, cleaned
  kFlatMsgHb = 3,    ///< heartbeat
};

/// Per-side state bits (one byte per side per diner).
enum : std::uint8_t {
  kFlatFork = 1,      ///< holding the fork for this edge
  kFlatDirty = 2,     ///< the held fork is dirty
  kFlatToken = 4,     ///< holding the request token for this edge
  kFlatReqSent = 8,   ///< our request is in flight (token traveling)
};

/// Wire format of the flat engines: POD, sortable by the canonical
/// delivery key (dst, src, seq).
struct FlatMsg {
  ProcessId dst = 0;
  ProcessId src = 0;
  std::uint32_t kind = 0;
  std::uint8_t side = 0;  ///< side AT THE RECEIVER
  std::uint64_t seq = 0;  ///< per-source send sequence number
  Time deliver_at = 0;
};

struct FlatConfig {
  std::uint64_t seed = 1;
  std::uint32_t n = 16;      ///< ring size (>= 2)
  Time steps = 1000;         ///< ticks to run
  std::uint32_t shards = 1;  ///< worker threads (clamped to [1, n])
  Time delay_min = 1;
  Time delay_max = 4;
  std::uint32_t hunger_pct = 25;  ///< P(thinking -> hungry) per tick, percent
  Time eat_ticks = 3;
  Time hb_every = 16;        ///< heartbeat period (0 = no heartbeats)
  Time suspect_after = 0;    ///< silence before suspicion (0 = detector off)
  std::vector<std::pair<ProcessId, Time>> crashes;  ///< (pid, tick)
  obs::Registry* metrics = nullptr;  ///< optional flat.* counter mirror
  bool record_events = false;  ///< keep per-diner events for trace merge
};

/// Run totals; every field is a sum over diners/shards (commutative, so
/// shard layout cannot perturb it).
struct FlatStats {
  std::uint64_t steps = 0;               ///< live diner-ticks executed
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;    ///< destination crashed
  std::uint64_t meals = 0;               ///< hungry -> eating transitions
  std::uint64_t crashes = 0;

  friend bool operator==(const FlatStats&, const FlatStats&) = default;
};

/// Counter-based draw: pure function of (seed, pid, counter). splitmix64
/// over a mixed lane keeps distinct pids/counters decorrelated.
inline std::uint64_t flat_draw(std::uint64_t seed, ProcessId pid,
                               std::uint64_t counter) {
  std::uint64_t lane = seed ^ (0x9e3779b97f4a7c15ULL * (pid + 1)) ^
                       (counter * 0xbf58476d1ce4e5b9ULL);
  return splitmix64(lane);
}

/// Message delay as a pure function of (seed, src, seq) in
/// [max(1, delay_min), max(1, delay_max)].
inline Time flat_delay(const FlatConfig& config, ProcessId src,
                       std::uint64_t seq) {
  const Time lo = config.delay_min < 1 ? 1 : config.delay_min;
  const Time hi = config.delay_max < lo ? lo : config.delay_max;
  std::uint64_t lane = config.seed ^ 0x64656c61792d666cULL ^
                       (0xff51afd7ed558ccdULL * (src + 1)) ^ seq;
  return lo + static_cast<Time>(splitmix64(lane) % (hi - lo + 1));
}

/// One shard's slice of the flat diner table: parallel arrays over the
/// diners it owns (pid % shards == shard, local index pid / shards), plus
/// that shard's contribution to stats and (optionally) events. All methods
/// are called by exactly one thread; cross-shard traffic goes through the
/// outboxes the caller passes to tick().
class FlatShard {
 public:
  /// Minimal shard-local event record; merged and widened to sim::Event by
  /// the runner. Per diner these are appended in tick order.
  struct Rec {
    Time time = 0;
    ProcessId pid = 0;
    std::uint8_t kind = 0;  ///< 0 = phase transition (a=from, b=to), 1 = crash
    std::uint8_t a = 0;
    std::uint8_t b = 0;
  };

  FlatShard(const FlatConfig& config, std::uint32_t shard,
            std::uint32_t shards)
      : config_(config), shard_(shard), shards_(shards) {
    const std::uint32_t n = config.n;
    for (ProcessId p = shard; p < n; p += shards) owned_.push_back(p);
    const std::size_t count = owned_.size();
    phase_.assign(count, FlatPhase::kThinking);
    side_[0].assign(count, 0);
    side_[1].assign(count, 0);
    eat_left_.assign(count, 0);
    meals_.assign(count, 0);
    rng_ctr_.assign(count, 0);
    send_seq_.assign(count, 0);
    last_heard_[0].assign(count, 0);
    last_heard_[1].assign(count, 0);
    crash_at_.assign(count, kNever);
    for (const auto& [pid, at] : config.crashes) {
      if (pid % shards == shard && pid < n) {
        std::size_t i = pid / shards;
        if (at < crash_at_[i]) crash_at_[i] = at;
      }
    }
    // Initial orientation: edge e (between e and (e+1)%n) starts with a
    // dirty fork at its lower endpoint and the request token opposite.
    for (std::size_t i = 0; i < count; ++i) {
      const ProcessId p = owned_[i];
      side_[1][i] = (p != n - 1) ? (kFlatFork | kFlatDirty) : kFlatToken;
      side_[0][i] = (p == 0) ? (kFlatFork | kFlatDirty) : kFlatToken;
    }
    // Delivery wheel: delays are bounded by delay_max, so a power-of-two
    // ring of buckets indexed by deliver_at covers every in-flight message.
    Time span = config.delay_max + 2;
    wheel_mask_ = 1;
    while (wheel_mask_ < span) wheel_mask_ <<= 1;
    wheel_.assign(static_cast<std::size_t>(wheel_mask_), {});
    --wheel_mask_;
    // Hot-loop hoists (pure precomputation, bit-identical results): the
    // heartbeat residue per diner and the delay band of flat_delay() —
    // `% hb_every` / `% span` on runtime values are real divisions, and
    // act() runs per diner per tick.
    delay_lo_ = config.delay_min < 1 ? 1 : config.delay_min;
    delay_span_ = (config.delay_max < delay_lo_ ? delay_lo_
                                                : config.delay_max) -
                  delay_lo_ + 1;
    delay_pow2_ = (delay_span_ & (delay_span_ - 1)) == 0;
    if (config.hb_every > 0) {
      hb_slot_.resize(count);
      for (std::size_t i = 0; i < count; ++i) {
        hb_slot_[i] = owned_[i] % config.hb_every;
      }
    }
    chain_head_.assign(count, kNoMsg);
    chain_tail_.assign(count, kNoMsg);
  }

  /// Queue an inbound message (from any shard's outbox) for future
  /// delivery. Bucket order is irrelevant: delivery sorts canonically.
  void accept(const FlatMsg& msg) {
    wheel_[msg.deliver_at & wheel_mask_].push_back(msg);
  }

  /// Execute tick `now` for every owned diner: apply due crashes, deliver
  /// this tick's messages in (dst, src, seq) order, then act. Outbound
  /// messages are appended to outboxes[shard_of(dst)].
  ///
  /// Canonical delivery order without a global sort: the due bucket is
  /// threaded into per-destination chains in append order, and append
  /// order within a bucket is already seq-monotone per source (a sender
  /// emits in seq order and the runner drains outboxes in a fixed order
  /// every tick), so each destination only needs a tiny stable insertion
  /// sort over its handful of messages to interleave its (at most two
  /// ring-neighbor) sources into (src, seq) order — the same order the
  /// old O(m log m) sort of the whole bucket produced.
  void tick(Time now, std::vector<std::vector<FlatMsg>>& outboxes) {
    std::vector<FlatMsg>& due = wheel_[now & wheel_mask_];
    chain_next_.assign(due.size(), kNoMsg);
    for (std::uint32_t idx = 0; idx < due.size(); ++idx) {
      const std::size_t local = due[idx].dst / shards_;
      if (chain_head_[local] == kNoMsg) {
        chain_head_[local] = idx;
      } else {
        chain_next_[chain_tail_[local]] = idx;
      }
      chain_tail_[local] = idx;
    }
    const Time hb_now =
        config_.hb_every > 0 ? now % config_.hb_every : 0;
    for (std::size_t i = 0; i < owned_.size(); ++i) {
      const ProcessId pid = owned_[i];
      if (crash_at_[i] == now) {
        phase_[i] = FlatPhase::kCrashed;
        ++stats_.crashes;
        ++dead_count_;
        if (config_.record_events) {
          events_.push_back({now, pid, 1, 0, 0});
        }
      }
      const bool dead = phase_[i] == FlatPhase::kCrashed;
      // Deliver (or drop) this diner's messages in (src, seq) order.
      const std::uint32_t head = chain_head_[i];
      if (head != kNoMsg) {
        chain_head_[i] = kNoMsg;
        if (chain_next_[head] == kNoMsg) {  // the common single-message case
          if (dead) {
            ++stats_.messages_dropped;
          } else {
            deliver(i, now, due[head], outboxes);
          }
        } else {
          scratch_.clear();
          for (std::uint32_t idx = head; idx != kNoMsg;
               idx = chain_next_[idx]) {
            scratch_.push_back(idx);
          }
          for (std::size_t a = 1; a < scratch_.size(); ++a) {
            const std::uint32_t idx = scratch_[a];
            std::size_t b = a;
            while (b > 0 && (due[scratch_[b - 1]].src > due[idx].src ||
                             (due[scratch_[b - 1]].src == due[idx].src &&
                              due[scratch_[b - 1]].seq > due[idx].seq))) {
              scratch_[b] = scratch_[b - 1];
              --b;
            }
            scratch_[b] = idx;
          }
          if (dead) {
            stats_.messages_dropped += scratch_.size();
          } else {
            for (const std::uint32_t idx : scratch_) {
              deliver(i, now, due[idx], outboxes);
            }
          }
        }
      }
      if (!dead) act(i, now, hb_now, outboxes);
    }
    stats_.steps += owned_.size() - dead_count_;
    due.clear();
  }

  /// Commutative per-shard signature contribution: each diner hashes its
  /// full final state into one word; contributions sum, so any partition
  /// of diners onto shards yields the same total.
  std::uint64_t state_fold() const {
    std::uint64_t fold = 0;
    for (std::size_t i = 0; i < owned_.size(); ++i) {
      std::uint64_t lane = 0x666c61742d736967ULL ^ config_.seed ^
                           (0x9e3779b97f4a7c15ULL * (owned_[i] + 1));
      lane ^= static_cast<std::uint64_t>(phase_[i]) |
              (static_cast<std::uint64_t>(side_[0][i]) << 8) |
              (static_cast<std::uint64_t>(side_[1][i]) << 16) |
              (static_cast<std::uint64_t>(meals_[i]) << 24);
      lane ^= splitmix64(lane) ^ (rng_ctr_[i] << 1) ^ (send_seq_[i] << 32) ^
              eat_left_[i];
      fold += splitmix64(lane);
    }
    return fold;
  }

  const FlatStats& stats() const { return stats_; }
  const std::vector<Rec>& events() const { return events_; }
  std::uint64_t in_flight() const {
    std::uint64_t total = 0;
    for (const auto& bucket : wheel_) total += bucket.size();
    return total;
  }

 private:
  ProcessId neighbor(ProcessId pid, std::uint8_t side) const {
    return side == 1 ? (pid + 1) % config_.n
                     : (pid + config_.n - 1) % config_.n;
  }

  void send(std::size_t i, Time now, std::uint8_t side, std::uint32_t kind,
            std::vector<std::vector<FlatMsg>>& outboxes) {
    const ProcessId src = owned_[i];
    const ProcessId dst = neighbor(src, side);
    FlatMsg msg;
    msg.dst = dst;
    msg.src = src;
    msg.kind = kind;
    msg.side = side ^ 1;  // my right edge is my right neighbor's left edge
    msg.seq = send_seq_[i]++;
    // Inline of flat_delay() with the band hoisted to ctor-time members —
    // identical lane, identical value.
    std::uint64_t lane = config_.seed ^ 0x64656c61792d666cULL ^
                         (0xff51afd7ed558ccdULL * (src + 1)) ^ msg.seq;
    const std::uint64_t draw = splitmix64(lane);
    msg.deliver_at =
        now + delay_lo_ +
        static_cast<Time>(delay_pow2_ ? draw & (delay_span_ - 1)
                                      : draw % delay_span_);
    ++stats_.messages_sent;
    // Single-shard fast path: the outbox round-trip is a pure copy (the
    // runner would drain it straight into accept()), and deliver_at is
    // always in (now, now + delay_max], so the target bucket is never the
    // one tick() is currently draining. Append order is unchanged.
    if (shards_ == 1) {
      wheel_[msg.deliver_at & wheel_mask_].push_back(msg);
    } else {
      outboxes[dst % shards_].push_back(msg);
    }
  }

  void deliver(std::size_t i, Time now, const FlatMsg& msg,
               std::vector<std::vector<FlatMsg>>& outboxes) {
    ++stats_.messages_delivered;
    const std::uint8_t side = msg.side;
    last_heard_[side][i] = now;
    std::uint8_t& bits = side_[side][i];
    switch (msg.kind) {
      case kFlatMsgReq:
        bits |= kFlatToken;
        // Hygiene: a dirty fork held outside a meal yields immediately.
        if ((bits & kFlatFork) && (bits & kFlatDirty) &&
            phase_[i] != FlatPhase::kEating) {
          bits &= static_cast<std::uint8_t>(~(kFlatFork | kFlatDirty));
          send(i, now, side, kFlatMsgFork, outboxes);
        }
        break;
      case kFlatMsgFork:
        bits |= kFlatFork;
        bits &= static_cast<std::uint8_t>(~(kFlatDirty | kFlatReqSent));
        break;
      case kFlatMsgHb:
      default:
        break;
    }
  }

  bool suspects(std::size_t i, Time now, std::uint8_t side) const {
    return config_.suspect_after > 0 &&
           now - last_heard_[side][i] > config_.suspect_after;
  }

  void transition(std::size_t i, Time now, FlatPhase to) {
    if (config_.record_events) {
      events_.push_back({now, owned_[i], 0,
                         static_cast<std::uint8_t>(phase_[i]),
                         static_cast<std::uint8_t>(to)});
    }
    phase_[i] = to;
  }

  void act(std::size_t i, Time now, Time hb_now,
           std::vector<std::vector<FlatMsg>>& out) {
    if (config_.hb_every > 0 && hb_now == hb_slot_[i]) {
      send(i, now, 0, kFlatMsgHb, out);
      send(i, now, 1, kFlatMsgHb, out);
    }
    switch (phase_[i]) {
      case FlatPhase::kThinking:
        if (flat_draw(config_.seed, owned_[i], rng_ctr_[i]++) % 100 <
            config_.hunger_pct) {
          transition(i, now, FlatPhase::kHungry);
        }
        break;
      case FlatPhase::kHungry: {
        bool ready = true;
        for (std::uint8_t side = 0; side < 2; ++side) {
          std::uint8_t& bits = side_[side][i];
          if (bits & kFlatFork) continue;
          if (suspects(i, now, side)) continue;  // <>P override
          ready = false;
          if ((bits & kFlatToken) && !(bits & kFlatReqSent)) {
            bits &= static_cast<std::uint8_t>(~kFlatToken);
            bits |= kFlatReqSent;
            send(i, now, side, kFlatMsgReq, out);
          }
        }
        if (ready) {
          for (std::uint8_t side = 0; side < 2; ++side) {
            if (side_[side][i] & kFlatFork) side_[side][i] |= kFlatDirty;
          }
          eat_left_[i] = config_.eat_ticks < 1 ? 1 : config_.eat_ticks;
          ++meals_[i];
          ++stats_.meals;
          transition(i, now, FlatPhase::kEating);
        }
        break;
      }
      case FlatPhase::kEating:
        if (--eat_left_[i] == 0) {
          // Honor requests deferred during the meal: token + dirty fork.
          for (std::uint8_t side = 0; side < 2; ++side) {
            std::uint8_t& bits = side_[side][i];
            if ((bits & kFlatToken) && (bits & kFlatFork)) {
              bits &= static_cast<std::uint8_t>(~(kFlatFork | kFlatDirty));
              send(i, now, side, kFlatMsgFork, out);
            }
          }
          transition(i, now, FlatPhase::kThinking);
        }
        break;
      case FlatPhase::kCrashed:
        break;
    }
  }

  const FlatConfig& config_;
  std::uint32_t shard_ = 0;
  std::uint32_t shards_ = 1;
  std::vector<ProcessId> owned_;

  // --- diner table (struct of arrays, indexed by local id) ----------------
  std::vector<FlatPhase> phase_;
  std::vector<std::uint8_t> side_[2];  ///< fork/dirty/token/req bits per side
  std::vector<Time> eat_left_;
  std::vector<std::uint32_t> meals_;
  std::vector<std::uint64_t> rng_ctr_;
  std::vector<std::uint64_t> send_seq_;
  std::vector<Time> last_heard_[2];
  std::vector<Time> crash_at_;

  // --- delivery wheel -----------------------------------------------------
  static constexpr std::uint32_t kNoMsg = 0xffffffffu;
  std::vector<std::vector<FlatMsg>> wheel_;
  Time wheel_mask_ = 0;
  Time delay_lo_ = 1;
  Time delay_span_ = 1;
  bool delay_pow2_ = true;
  std::vector<Time> hb_slot_;            ///< owned_[i] % hb_every
  std::vector<std::uint32_t> chain_head_;  ///< per-diner due chain (tick-local)
  std::vector<std::uint32_t> chain_tail_;
  std::vector<std::uint32_t> chain_next_;
  std::vector<std::uint32_t> scratch_;
  std::uint64_t dead_count_ = 0;  ///< crashed owned diners (steps batching)

  FlatStats stats_;
  std::vector<Rec> events_;
};

}  // namespace wfd::sim
