// Struct-of-arrays transit store: ONE shared message pool and ONE two-level
// hierarchical calendar for the whole engine, replacing the per-destination
// CalendarQueue array when EngineConfig::transit == TransitKind::kSoa.
//
// Why: a CalendarQueue is ~6 KiB of bucket headers per destination. At
// n = 1e6 that is ~6 GiB of mostly-cold headers, and every push lands in a
// different destination's object — a guaranteed cache+TLB miss per message.
// Worse, a destination that steps rarely (every ~n ticks under any fair
// scheduler) keeps a stale per-queue clock, so at large n almost every push
// overflows the 256-tick window into the sorted band. Here all hot state is
// per-field contiguous: deliver times, link words and message bodies are
// parallel arrays indexed by slot, and the calendar is shared, so its
// buckets stay resident no matter how many destinations exist.
//
// Layout (slot = index into the parallel arrays):
//
//   near wheel   2F tick buckets (F = kFarWidth), index = due mod 2F. Holds
//                every item due before `horizon_`. One bucket = exactly one
//                future tick, as an intrusive singly-linked list in push
//                (= seq) order.
//   far wheel    kFarCount blocks of F ticks each, index = (due / F) mod
//                kFarCount. Holds items due in [horizon_, far_end_).
//   outer band   items past far_end_, kept as slot ids sorted by
//                (due, seq) — the rare tail (multi-thousand-tick
//                retransmits, pre-GST partial synchrony).
//   ready lists  per-destination intrusive list of items already due but
//                not yet consumed (the destination steps later than the
//                tick, or deferred by one-per-sender step semantics), in
//                exact (deliver_at, seq) order.
//
// advance(now) must be called once per tick, for consecutive ticks. When
// `now` crosses a multiple of F it CASCADES: the far block starting at
// `horizon_` unrolls into near buckets, then the outer prefix newly covered
// by the far wheel sweeps into its (empty) top block. Then the near bucket
// of `now` SCATTERS onto the destinations' ready lists.
//
// Ordering argument (the engine's (deliver_at, seq) contract):
//   * within any bucket, append order is push order is seq order;
//   * a far block is promoted before any direct near push for its ticks can
//     exist (those route near only once `horizon_` has passed them, i.e.
//     after the cascade), and the promotion walks the block in seq order —
//     so each near bucket stays seq-sorted;
//   * the outer band sweeps into a far block exactly when that block's
//     range enters far coverage, before any direct far push for that range
//     (all later pushes carry larger seqs), and the sweep walks the sorted
//     prefix in (due, seq) order into an empty block;
//   * scatter appends each tick's items behind whatever older (deferred or
//     earlier-tick) items the ready list still holds.
// Hence drain_ready visits exactly the sequence the per-destination
// CalendarQueues would produce, and the engine's SoA mode is bit-identical
// to the legacy mode (pinned by tests/test_soa_engine.cpp).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/transit_queue.hpp"  // InTransit (shared consume-item shape)
#include "sim/types.hpp"

namespace wfd::sim {

class SoaTransit {
 public:
  static constexpr std::uint32_t kNil = 0xffffffffu;
  /// Far-block width in ticks (power of two). The near wheel spans two
  /// blocks so a cascade always lands in currently-unused near buckets.
  static constexpr std::uint32_t kFarBits = 10;
  static constexpr Time kFarWidth = Time{1} << kFarBits;      // 1024 ticks
  static constexpr std::size_t kNearSize = std::size_t{2} << kFarBits;
  static constexpr std::size_t kFarCount = 1024;  // far coverage: ~1M ticks

  explicit SoaTransit(std::size_t n) { reset(n); }

  void reset(std::size_t n) {
    ready_head_.assign(n, kNil);
    ready_tail_.assign(n, kNil);
    pending_.assign(n, 0);
    dead_.assign(n, 0);
    near_.assign(kNearSize, Bucket{});
    far_.assign(kFarCount, Bucket{});
    outer_.clear();
    outer_head_ = 0;
    msg_.clear();
    due_.clear();
    next_.clear();
    free_head_ = kNil;
    total_ = 0;
    horizon_ = 2 * kFarWidth;
    far_end_ = horizon_ + kFarWidth * static_cast<Time>(kFarCount);
  }

  /// Enqueue a message for `dst` due at `due` and return the slot to fill
  /// in place. Precondition: `due` is strictly past the last advance()d
  /// tick (the engine always pushes with due >= now + 1). The reference is
  /// valid until the next push().
  Message& push(Time due, ProcessId dst) {
    const std::uint32_t slot = alloc();
    due_[slot] = due;
    next_[slot] = kNil;
    ++pending_[dst];
    ++total_;
    if (due < horizon_) {
      append(near_[due & (kNearSize - 1)], slot);
    } else if (due < far_end_) {
      append(far_[(due >> kFarBits) & (kFarCount - 1)], slot);
    } else {
      insert_outer(slot, due);
    }
    return msg_[slot];
  }

  /// Advance the shared clock to `now` (exactly one tick past the previous
  /// call) and move everything due at `now` onto its destination's ready
  /// list. Items for destinations cleared by clear_dst() free silently —
  /// their counters were settled when the destination died.
  void advance(Time now) {
    if ((now & (kFarWidth - 1)) == 0) cascade(now);
    Bucket& bucket = near_[now & (kNearSize - 1)];
    std::uint32_t cur = bucket.head;
    bucket.head = bucket.tail = kNil;
    while (cur != kNil) {
      const std::uint32_t nxt = next_[cur];
      assert(due_[cur] == now);
      const ProcessId dst = msg_[cur].dst;
      if (dead_[dst]) {
        free_slot(cur);
      } else {
        next_[cur] = kNil;
        append_ready(dst, cur);
      }
      cur = nxt;
    }
  }

  bool has_ready(ProcessId dst) const { return ready_head_[dst] != kNil; }

  /// Visit `dst`'s due messages in exact (deliver_at, seq) order.
  /// `consume(item)` returns true to consume or false to defer the item in
  /// place (it stays, in order, for a later drain). `consume` may push()
  /// back into this store; the item it was passed is a copy and stays valid.
  template <class Consume>
  void drain_ready(ProcessId dst, Consume&& consume) {
    std::uint32_t prev = kNil;
    std::uint32_t cur = ready_head_[dst];
    while (cur != kNil) {
      const std::uint32_t nxt = next_[cur];
      // Copy out: consume may push() and grow the pool arrays.
      const InTransit item{due_[cur], msg_[cur]};
      if (consume(static_cast<const InTransit&>(item))) {
        if (prev == kNil) {
          ready_head_[dst] = nxt;
        } else {
          next_[prev] = nxt;
        }
        if (nxt == kNil) ready_tail_[dst] = prev;
        free_slot(cur);
        --pending_[dst];
        --total_;
      } else {
        prev = cur;
      }
      cur = nxt;
    }
  }

  /// Drop everything queued for `dst` (destination crashed) and return the
  /// number of messages discarded. Items still in the wheels are lazily
  /// freed at scatter time; their counts settle here so conservation
  /// arithmetic stays exact immediately.
  std::uint64_t clear_dst(ProcessId dst) {
    std::uint32_t cur = ready_head_[dst];
    while (cur != kNil) {
      const std::uint32_t nxt = next_[cur];
      free_slot(cur);
      cur = nxt;
    }
    ready_head_[dst] = kNil;
    ready_tail_[dst] = kNil;
    const std::uint64_t dropped = pending_[dst];
    total_ -= dropped;
    pending_[dst] = 0;
    dead_[dst] = 1;
    return dropped;
  }

  /// Messages currently queued for `dst` (ready + still in the wheels).
  std::uint64_t pending(ProcessId dst) const { return pending_[dst]; }
  /// Messages currently queued across all destinations.
  std::size_t size() const { return static_cast<std::size_t>(total_); }

 private:
  struct Bucket {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
  };

  void append(Bucket& bucket, std::uint32_t slot) {
    if (bucket.tail == kNil) {
      bucket.head = slot;
    } else {
      next_[bucket.tail] = slot;
    }
    bucket.tail = slot;
  }

  void append_ready(ProcessId dst, std::uint32_t slot) {
    if (ready_tail_[dst] == kNil) {
      ready_head_[dst] = slot;
    } else {
      next_[ready_tail_[dst]] = slot;
    }
    ready_tail_[dst] = slot;
  }

  /// Promote the far block starting at `horizon_` into the near wheel, then
  /// sweep the outer prefix the far wheel newly covers into its top block.
  void cascade([[maybe_unused]] Time now) {
    assert(horizon_ == now + kFarWidth);
    Bucket& block = far_[(horizon_ >> kFarBits) & (kFarCount - 1)];
    std::uint32_t cur = block.head;
    block.head = block.tail = kNil;
    while (cur != kNil) {
      const std::uint32_t nxt = next_[cur];
      next_[cur] = kNil;
      append(near_[due_[cur] & (kNearSize - 1)], slot_check(cur));
      cur = nxt;
    }
    horizon_ += kFarWidth;
    far_end_ += kFarWidth;
    while (outer_head_ < outer_.size() && due_[outer_[outer_head_]] < far_end_) {
      const std::uint32_t slot = outer_[outer_head_++];
      next_[slot] = kNil;
      append(far_[(due_[slot] >> kFarBits) & (kFarCount - 1)], slot);
    }
    if (outer_head_ != 0 && outer_head_ == outer_.size()) {
      outer_.clear();
      outer_head_ = 0;
    }
  }

  std::uint32_t slot_check(std::uint32_t slot) const {
    assert(slot < msg_.size());
    return slot;
  }

  void insert_outer(std::uint32_t slot, Time due) {
    // Every queued item carries a smaller seq, so among equal due times the
    // new item goes last: upper_bound on the due time alone lands there.
    const auto pos = std::upper_bound(
        outer_.begin() + static_cast<std::ptrdiff_t>(outer_head_),
        outer_.end(), due,
        [this](Time t, std::uint32_t s) { return t < due_[s]; });
    outer_.insert(pos, slot);
  }

  std::uint32_t alloc() {
    if (free_head_ != kNil) {
      const std::uint32_t slot = free_head_;
      free_head_ = next_[slot];
      return slot;
    }
    const std::uint32_t slot = static_cast<std::uint32_t>(msg_.size());
    msg_.emplace_back();
    due_.push_back(0);
    next_.push_back(kNil);
    return slot;
  }

  void free_slot(std::uint32_t slot) {
    next_[slot] = free_head_;
    free_head_ = slot;
  }

  // --- slot pool (struct-of-arrays) ---------------------------------------
  std::vector<Message> msg_;
  std::vector<Time> due_;
  std::vector<std::uint32_t> next_;  ///< bucket/ready/free-list link word
  std::uint32_t free_head_ = kNil;

  // --- shared two-level calendar ------------------------------------------
  std::vector<Bucket> near_;          ///< kNearSize one-tick buckets
  std::vector<Bucket> far_;           ///< kFarCount F-tick blocks
  std::vector<std::uint32_t> outer_;  ///< past far_end_, sorted (due, seq)
  std::size_t outer_head_ = 0;
  Time horizon_ = 0;  ///< exclusive end of near coverage (multiple of F)
  Time far_end_ = 0;  ///< exclusive end of far coverage

  // --- per-destination state ----------------------------------------------
  std::vector<std::uint32_t> ready_head_;
  std::vector<std::uint32_t> ready_tail_;
  std::vector<std::uint64_t> pending_;
  std::vector<std::uint8_t> dead_;
  std::uint64_t total_ = 0;
};

}  // namespace wfd::sim
