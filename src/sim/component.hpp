// Components: logical threads multiplexed onto one physical process. The
// paper runs the two witness threads (and the two subject threads) of the
// reduction as "a single stream of physical execution ... executed under
// interleaving semantics". A ComponentHost realizes exactly that: it owns a
// set of components, routes inbound messages by port, and on each atomic
// step gives exactly one component (rotating, hence weakly fair) the chance
// to execute one action.
#pragma once

#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "sim/process.hpp"
#include "sim/types.hpp"

namespace wfd::sim {

/// A logical thread hosted by a ComponentHost. Components of the same host
/// share failure semantics (the host crashing crashes them all) and may
/// share state via plain references wired at construction time — they are
/// the same process.
class Component {
 public:
  virtual ~Component() = default;
  virtual void on_init(Context&) {}
  /// A message addressed to one of this component's registered ports.
  virtual void on_message(Context&, const Message&) {}
  /// One interleaved action opportunity (at most one guarded action body).
  virtual void on_tick(Context&) {}
};

/// Process hosting components with port-based routing and round-robin
/// interleaving.
class ComponentHost : public Process {
 public:
  /// Register a component; `ports` lists the ports it receives on (a port
  /// may be claimed by at most one component per host).
  void add_component(std::shared_ptr<Component> component,
                     const std::vector<Port>& ports) {
    for (Port port : ports) {
      if (!routes_.emplace(port, component.get()).second) {
        throw std::logic_error("ComponentHost: duplicate port registration");
      }
    }
    components_.push_back(std::move(component));
  }

  void on_init(Context& ctx) override {
    for (auto& component : components_) component->on_init(ctx);
  }

  void on_message(Context& ctx, const Message& msg) override {
    if (auto it = routes_.find(msg.port); it != routes_.end()) {
      it->second->on_message(ctx, msg);
    }
    // Unrouted ports are silently dropped: a host only understands the
    // protocols it participates in.
  }

  void on_step(Context& ctx) override {
    if (components_.empty()) return;
    next_ = (next_ + 1) % components_.size();
    components_[next_]->on_tick(ctx);
  }

  std::size_t component_count() const { return components_.size(); }

 private:
  std::vector<std::shared_ptr<Component>> components_;
  std::unordered_map<Port, Component*> routes_;
  std::size_t next_ = 0;
};

}  // namespace wfd::sim
