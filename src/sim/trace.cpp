#include "sim/trace.hpp"

#include <sstream>

namespace wfd::sim {

void Trace::bind_metrics(obs::Registry* registry) {
  if (registry == nullptr) {
    metrics_.reset();
    return;
  }
  for (std::size_t k = 0; k < kKnownKinds; ++k) {
    kind_counter_ids_[k] = registry->counter(
        std::string("sim.events.") + to_string(static_cast<EventKind>(k)));
  }
  kind_counter_ids_[kKnownKinds] = registry->counter("sim.events.other");
  truncated_counter_id_ = registry->counter("sim.events.truncated");
  metrics_ = std::make_unique<obs::Scope>(*registry);
  // Deliberately does NOT widen enabled_: counting piggybacks on dispatch,
  // so only events some retention mask or subscription already pays for are
  // counted. Unobserved kinds stay on the zero-cost path — this is how
  // metrics-on runs keep the E19 overhead near zero — and capture/export
  // flows (which retain every kind) still get complete per-kind counts.
}

void Trace::dispatch(const Event& event) {
  const auto raw = static_cast<unsigned>(event.kind);
  if (metrics_) {
    metrics_->add(kind_counter_ids_[raw < kKnownKinds ? raw : kKnownKinds]);
  }
  if (mask_matches(retain_mask_, event.kind)) {
    if (events_.size() < max_events_) {
      events_.push_back(event);
    } else {
      ++truncated_;
      if (metrics_) metrics_->add(truncated_counter_id_);
    }
  }
  for (const Subscription& sub : observers_) {
    if (mask_matches(sub.mask, event.kind)) sub.fn(event);
  }
}

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kStep: return "step";
    case EventKind::kSend: return "send";
    case EventKind::kDeliver: return "deliver";
    case EventKind::kDrop: return "drop";
    case EventKind::kCrash: return "crash";
    case EventKind::kDinerTransition: return "diner";
    case EventKind::kDetectorChange: return "detector";
    case EventKind::kCustom: return "custom";
  }
  return "?";
}

std::string to_string(const Event& event) {
  std::ostringstream out;
  out << "t=" << event.time << " p" << event.pid << ' ' << to_string(event.kind)
      << " a=" << event.a << " b=" << event.b << " c=" << event.c;
  return out.str();
}

}  // namespace wfd::sim
