#include "sim/trace.hpp"

#include <sstream>

namespace wfd::sim {

void Trace::dispatch(const Event& event) {
  if (events_.size() < max_events_) events_.push_back(event);
  const std::uint64_t bit = kind_mask(event.kind);
  for (const Subscription& sub : observers_) {
    if (sub.mask & bit) sub.fn(event);
  }
}

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kStep: return "step";
    case EventKind::kSend: return "send";
    case EventKind::kDeliver: return "deliver";
    case EventKind::kDrop: return "drop";
    case EventKind::kCrash: return "crash";
    case EventKind::kDinerTransition: return "diner";
    case EventKind::kDetectorChange: return "detector";
    case EventKind::kCustom: return "custom";
  }
  return "?";
}

std::string to_string(const Event& event) {
  std::ostringstream out;
  out << "t=" << event.time << " p" << event.pid << ' ' << to_string(event.kind)
      << " a=" << event.a << " b=" << event.b << " c=" << event.c;
  return out.str();
}

}  // namespace wfd::sim
