// The simulation engine: owns processes, channels, clock, scheduler, fault
// plan and trace, and advances the run one atomic step at a time. Every run
// is a pure function of (configuration, seed).
//
// Hot-path layout (one step = one scheduled process):
//   * per-destination CalendarQueue transit queues — O(1) push, bulk-ordered
//     collect, in-place deferral (sim/transit_queue.hpp);
//   * pending crashes kept as a time-sorted band, so the no-crash-due common
//     case is a single comparison instead of an all-process scan;
//   * the receive phase stamps senders with a step epoch instead of
//     refilling a seen-bitmap, and defers duplicates inside the queue's
//     ready band instead of popping into a side buffer and re-pushing;
//   * trace emission is a branch-and-return unless the event kind is
//     enabled (sim/trace.hpp).
// None of this may change observable behavior: delivery follows exact
// (deliver_at, seq) order and the RNG draw sequence is untouched, so traces
// stay byte-identical to the pre-overhaul heap engine (pinned by
// tests/test_determinism.cpp).
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/delay.hpp"
#include "sim/net.hpp"
#include "sim/process.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "sim/soa_transit.hpp"
#include "sim/trace.hpp"
#include "sim/transit_queue.hpp"
#include "sim/types.hpp"

namespace wfd::sim {

/// Aggregate run statistics (ground truth; monitors may read, processes may
/// not).
struct EngineStats {
  std::uint64_t steps = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;     ///< dst crashed, adversary loss/cut
  std::uint64_t crashes = 0;
  /// Network-adversary subsets of the totals above (sim/net.hpp). Losses
  /// (random or partition) count in BOTH messages_lost and messages_dropped,
  /// so `sent == delivered + dropped + in_transit` stays the conservation
  /// law; duplicates add `messages_duplicated` extra in-flight copies, so
  /// with the adversary on it reads
  /// `sent + duplicated == delivered + dropped + in_transit`.
  std::uint64_t messages_lost = 0;
  std::uint64_t messages_duplicated = 0;
  /// Channel retransmission attempts (sim/net.hpp retransmit_every). Purely
  /// informational: a message recovered by a retransmit counts once in
  /// `messages_sent` and once in `messages_delivered`, so the conservation
  /// law above is untouched.
  std::uint64_t messages_retransmitted = 0;
};

/// Transit-layer storage strategy. Both modes deliver in exact
/// (deliver_at, seq) order with identical RNG draw sequences, so a run is
/// bit-identical under either (pinned by tests/test_soa_engine.cpp); they
/// differ only in memory layout and throughput at large n.
enum class TransitKind : std::uint8_t {
  /// Per-destination CalendarQueue objects (sim/transit_queue.hpp): ~6 KiB
  /// of bucket headers per process. Fine to n~1e3; the default.
  kCalendar,
  /// One shared slot pool + two-level hierarchical wheel + per-destination
  /// ready lists (sim/soa_transit.hpp): O(1) per-process footprint, cache-
  /// dense to n=1e6.
  kSoa,
};

struct EngineConfig {
  std::uint64_t seed = 0x5eed;
  /// Events retained in memory for offline inspection (observers always run).
  std::size_t trace_capacity = 0;
  /// Kind mask for retention (kind_mask(...) bits; default everything).
  /// Only meaningful with trace_capacity > 0.
  std::uint64_t trace_retain_kinds = kAllEventKinds;
  /// Optional metrics registry: the engine registers sim.steps / sim.sent /
  /// sim.delivered / sim.dropped / sim.crashes counters (mirrored from the
  /// engine stats at run()/run_until()/destructor boundaries), and the trace
  /// counts dispatched events per kind (sim.events.*; complete whenever
  /// retention covers every kind, as in capture/export runs). Never perturbs
  /// the run itself (no RNG draws, no event changes) and never slows the
  /// per-step hot path.
  obs::Registry* metrics = nullptr;
  /// Messages a process may send inside one atomic step (paper: at most one
  /// per destination; layered protocols at one process may multiplex several
  /// logical threads into one physical step, so the bound is per
  /// (destination, step) times the number of registered layers — checked
  /// loosely via this knob; 0 disables the check).
  std::uint32_t max_sends_per_step = 0;
  /// Transit storage (see TransitKind). Behavior-neutral by contract.
  TransitKind transit = TransitKind::kCalendar;
};

/// Discrete-event engine for the paper's asynchronous model.
class Engine {
 public:
  explicit Engine(EngineConfig config = {});
  ~Engine();  ///< flushes any un-mirrored stats into the metrics registry

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// --- configuration (before init()) -------------------------------------
  ProcessId add_process(std::unique_ptr<Process> process);
  void set_delay_model(std::unique_ptr<DelayModel> model);
  void set_scheduler(std::unique_ptr<Scheduler> scheduler);
  /// Schedule a crash: `pid` ceases execution at tick `at` (never recovers).
  /// May also be called mid-run for a future tick (or `at` = now, taking
  /// effect on the next step); rescheduling a pid replaces its crash time.
  void schedule_crash(ProcessId pid, Time at);
  /// Install the network adversary (sim/net.hpp). A disabled config (the
  /// default) is a no-op: send_from takes a single never-taken branch and
  /// the engine's RNG draw sequence is untouched, so runs stay bit-identical
  /// to an adversary-free engine. The adversary draws from its own private
  /// generator seeded from `net.seed` (or derived from the engine seed when
  /// 0).
  void set_network(NetConfig net);

  /// Finish configuration; runs on_init for every process. Idempotent.
  void init();

  /// --- execution ----------------------------------------------------------
  /// Advance one atomic step of one scheduled process. Returns false when no
  /// live process remains.
  bool step();
  /// Run `n` steps (or until all processes crashed). Returns steps executed.
  std::uint64_t run(std::uint64_t n);
  /// Resume execution up to tick `target` (one step is one tick, so a fresh
  /// engine after run_to(T) sits at now() == T unless the population fully
  /// crashed first). The checkpoint/resume primitive behind fuzz prefix
  /// snapshots: splitting one run into ANY sequence of run_to calls is
  /// bit-identical to the single cold run(n) — including the all-crashed
  /// edge, where the clock stops exactly one tick past the last live step
  /// and further calls are no-ops (pinned by tests/test_fuzz_evolve.cpp
  /// over the conformance-vector corpus). Returns now().
  Time run_to(Time target);
  /// Run until `pred()` holds, checking every `check_every` steps; gives up
  /// after `max_steps`. Returns true iff the predicate held.
  bool run_until(const std::function<bool()>& pred, std::uint64_t max_steps,
                 std::uint64_t check_every = 1);

  /// --- observation (ground truth; for monitors and experiments) ----------
  Time now() const { return now_; }
  std::uint32_t process_count() const { return static_cast<std::uint32_t>(processes_.size()); }
  bool is_live(ProcessId pid) const { return !crashed_[pid]; }
  bool is_correct(ProcessId pid) const { return crash_at_[pid] == kNever; }
  Time crash_time(ProcessId pid) const { return crash_at_[pid]; }
  std::size_t in_transit_count() const;
  const EngineStats& stats() const { return stats_; }
  Trace& trace() { return trace_; }
  Rng& rng() { return rng_; }

  /// Mirror the stats accumulated since the last flush into the metrics
  /// registry (no-op without one). run()/run_until() and the destructor call
  /// this, so snapshots taken after a run are complete; only callers driving
  /// step() directly need to flush by hand before snapshotting.
  void flush_metrics();

  template <class T>
  T& process_as(ProcessId pid) {
    return dynamic_cast<T&>(*processes_[pid]);
  }

 private:
  friend class Context;
  void send_from(ProcessId src, ProcessId dst, Port port, const Payload& payload);
  void apply_crashes_due();
  void deliver_phase(ProcessId pid, Context& ctx);
  void deliver_phase_soa(ProcessId pid, Context& ctx);
  /// Retransmitting channel wrapper (net.retransmit_every > 0): after the
  /// adversary eats a send, re-offer it every retransmit_every ticks until
  /// one attempt survives (true; the message is in transit) or attempts run
  /// out (false; caller records the final drop).
  bool try_retransmit(ProcessId src, ProcessId dst, Port port,
                      const Payload& payload);

  /// Adversary state, allocated only when an enabled NetConfig is installed
  /// (send_from tests one pointer when off). The generator is private to the
  /// adversary so its draws never perturb the engine's sequence.
  struct NetState {
    NetConfig config;
    Rng rng;
    explicit NetState(const NetConfig& net, std::uint64_t engine_seed)
        : config(net),
          rng(net.seed != 0 ? net.seed : engine_seed ^ 0x6e65742d61647621ULL) {}
  };
  /// True iff the adversary eats the (src, dst) send at now_ (partition cut
  /// first — deterministic, no draw — then a loss draw).
  bool net_drops(ProcessId src, ProcessId dst);
  /// Deterministic partition-cut test at an arbitrary instant (retransmit
  /// attempts probe future ticks).
  bool net_cut(ProcessId src, ProcessId dst, Time at) const;

  struct PendingCrash {
    Time at = 0;
    ProcessId pid = kNoProcess;
    /// Sorted descending so the earliest (at, pid) sits at the back.
    friend bool operator<(const PendingCrash& a, const PendingCrash& b) {
      if (a.at != b.at) return a.at > b.at;
      return a.pid > b.pid;
    }
  };

  EngineConfig config_;
  Rng rng_;
  Trace trace_;
  EngineStats stats_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  bool initialized_ = false;

  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<CalendarQueue> inbound_;     // per destination (kCalendar mode)
  /// Shared SoA transit store; null in kCalendar mode. When set, inbound_
  /// stays empty (its per-destination headers are the very footprint SoA
  /// mode exists to avoid).
  std::unique_ptr<SoaTransit> soa_;
  /// Byte per pid (not vector<bool>): tested on every send and step.
  std::vector<std::uint8_t> crashed_;
  std::vector<Time> crash_at_;             // kNever if correct
  /// Crash times not yet applied, sorted descending by (at, pid): the step
  /// loop pays one comparison against the back until a crash is really due.
  /// May hold stale entries after a reschedule; apply filters them against
  /// crash_at_.
  std::vector<PendingCrash> pending_crashes_;
  /// Dense, ascending list of live process ids. Kept ascending (the
  /// scheduler draw sequence depends on the order, so a swap-remove would
  /// change runs); a crash erases at the known index in live_pos_ instead
  /// of rescanning and reallocating the whole list.
  std::vector<ProcessId> live_;
  std::vector<std::size_t> live_pos_;      // pid -> index in live_
  std::unique_ptr<DelayModel> delay_;
  std::unique_ptr<Scheduler> scheduler_;
  std::unique_ptr<NetState> net_;  ///< null unless the adversary is enabled

  /// Devirtualized uniform delay draw (see DelayModel::uniform_bounds):
  /// when the model opts in, send_from inlines `min + below(span)` — the
  /// exact draw delay() would make — instead of a virtual call per message.
  bool delay_uniform_ = false;
  Time delay_min_ = 1;
  Time delay_span_ = 1;

  /// Receive-phase epoch stamps: sender_epoch_[src] == recv_epoch_ means
  /// src already delivered this step. Replaces a per-step O(n) bitmap fill.
  std::vector<std::uint64_t> sender_epoch_;
  std::uint64_t recv_epoch_ = 0;
  std::uint32_t sends_this_step_ = 0;

  /// Metrics shard (null unless EngineConfig::metrics was set). The hot path
  /// never touches it: per-step accounting stays in the plain stats_ fields
  /// it pays for anyway, and flush_metrics() mirrors the deltas into the
  /// registry at run boundaries — both halves of the E19 budget (0% off,
  /// near-0% on) fall out of that.
  std::unique_ptr<obs::Scope> metrics_;
  EngineStats flushed_;  ///< stats_ values already mirrored into the registry
  obs::Registry::Id m_steps_ = 0;
  obs::Registry::Id m_sent_ = 0;
  obs::Registry::Id m_delivered_ = 0;
  obs::Registry::Id m_dropped_ = 0;
  obs::Registry::Id m_crashes_ = 0;
  obs::Registry::Id m_lost_ = 0;
  obs::Registry::Id m_duplicated_ = 0;
  obs::Registry::Id m_retransmitted_ = 0;
};

inline Time Context::now() const { return engine_.now(); }
inline Rng& Context::rng() { return engine_.rng(); }
inline std::uint32_t Context::process_count() const { return engine_.process_count(); }
inline void Context::send(ProcessId dst, Port port, const Payload& payload) {
  engine_.send_from(self_, dst, port, payload);
}
inline void Context::record(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  engine_.trace().emit(EventKind::kCustom, engine_.now(), self_, a, b, c);
}
inline void Context::record_kind(std::uint8_t kind, std::uint64_t a,
                                 std::uint64_t b, std::uint64_t c) {
  engine_.trace().emit(static_cast<EventKind>(kind), engine_.now(), self_, a,
                       b, c);
}

}  // namespace wfd::sim
