// The simulation engine: owns processes, channels, clock, scheduler, fault
// plan and trace, and advances the run one atomic step at a time. Every run
// is a pure function of (configuration, seed).
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/delay.hpp"
#include "sim/process.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "sim/trace.hpp"
#include "sim/types.hpp"

namespace wfd::sim {

/// Aggregate run statistics (ground truth; monitors may read, processes may
/// not).
struct EngineStats {
  std::uint64_t steps = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;  ///< destination crashed
  std::uint64_t crashes = 0;
};

struct EngineConfig {
  std::uint64_t seed = 0x5eed;
  /// Events retained in memory for offline inspection (observers always run).
  std::size_t trace_capacity = 0;
  /// Messages a process may send inside one atomic step (paper: at most one
  /// per destination; layered protocols at one process may multiplex several
  /// logical threads into one physical step, so the bound is per
  /// (destination, step) times the number of registered layers — checked
  /// loosely via this knob; 0 disables the check).
  std::uint32_t max_sends_per_step = 0;
};

/// Discrete-event engine for the paper's asynchronous model.
class Engine {
 public:
  explicit Engine(EngineConfig config = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// --- configuration (before init()) -------------------------------------
  ProcessId add_process(std::unique_ptr<Process> process);
  void set_delay_model(std::unique_ptr<DelayModel> model);
  void set_scheduler(std::unique_ptr<Scheduler> scheduler);
  /// Schedule a crash: `pid` ceases execution at tick `at` (never recovers).
  void schedule_crash(ProcessId pid, Time at);

  /// Finish configuration; runs on_init for every process. Idempotent.
  void init();

  /// --- execution ----------------------------------------------------------
  /// Advance one atomic step of one scheduled process. Returns false when no
  /// live process remains.
  bool step();
  /// Run `n` steps (or until all processes crashed). Returns steps executed.
  std::uint64_t run(std::uint64_t n);
  /// Run until `pred()` holds, checking every `check_every` steps; gives up
  /// after `max_steps`. Returns true iff the predicate held.
  bool run_until(const std::function<bool()>& pred, std::uint64_t max_steps,
                 std::uint64_t check_every = 1);

  /// --- observation (ground truth; for monitors and experiments) ----------
  Time now() const { return now_; }
  std::uint32_t process_count() const { return static_cast<std::uint32_t>(processes_.size()); }
  bool is_live(ProcessId pid) const { return !crashed_[pid]; }
  bool is_correct(ProcessId pid) const { return crash_at_[pid] == kNever; }
  Time crash_time(ProcessId pid) const { return crash_at_[pid]; }
  std::size_t in_transit_count() const;
  const EngineStats& stats() const { return stats_; }
  Trace& trace() { return trace_; }
  Rng& rng() { return rng_; }

  template <class T>
  T& process_as(ProcessId pid) {
    return dynamic_cast<T&>(*processes_[pid]);
  }

 private:
  friend class Context;
  void send_from(ProcessId src, ProcessId dst, Port port, const Payload& payload);
  void apply_crashes_due();
  void deliver_phase(ProcessId pid, Context& ctx);

  struct InTransit {
    Time deliver_at = 0;
    Message msg{};
    /// Min-heap ordering by (deliver_at, seq): deterministic tie-breaks.
    bool operator>(const InTransit& other) const {
      if (deliver_at != other.deliver_at) return deliver_at > other.deliver_at;
      return msg.seq > other.msg.seq;
    }
  };
  using TransitQueue =
      std::priority_queue<InTransit, std::vector<InTransit>, std::greater<>>;

  EngineConfig config_;
  Rng rng_;
  Trace trace_;
  EngineStats stats_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  bool initialized_ = false;

  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<TransitQueue> inbound_;      // per destination
  std::vector<bool> crashed_;
  std::vector<Time> crash_at_;             // kNever if correct
  std::vector<ProcessId> live_;            // dense list, rebuilt on crash
  std::unique_ptr<DelayModel> delay_;
  std::unique_ptr<Scheduler> scheduler_;

  // scratch for the receive phase (avoid per-step allocation)
  std::vector<InTransit> deferred_;
  std::vector<bool> sender_seen_;
  std::uint32_t sends_this_step_ = 0;
};

inline Time Context::now() const { return engine_.now(); }
inline Rng& Context::rng() { return engine_.rng(); }
inline std::uint32_t Context::process_count() const { return engine_.process_count(); }
inline void Context::send(ProcessId dst, Port port, const Payload& payload) {
  engine_.send_from(self_, dst, port, payload);
}
inline void Context::record(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  engine_.trace().emit(Event{engine_.now(), EventKind::kCustom, self_, a, b, c});
}
inline void Context::record_kind(std::uint8_t kind, std::uint64_t a,
                                 std::uint64_t b, std::uint64_t c) {
  engine_.trace().emit(
      Event{engine_.now(), static_cast<EventKind>(kind), self_, a, b, c});
}

}  // namespace wfd::sim
