// Sharded deterministic execution of the flat dining core (flat_dining.hpp).
//
// Diners are hash-partitioned onto shards (shard_of(pid) = pid % shards) and
// the run proceeds in TICK LOCKSTEP with two barriers per tick:
//
//     tick T           ┌─────────────┐     ┌─────────────┐
//   shard 0  compute → │             │ →  exchange  →   │             │
//   shard 1  compute → │  barrier A  │ →  exchange  →   │  barrier B  │ → T+1
//   shard k  compute → │             │ →  exchange  →   │             │
//                      └─────────────┘     └─────────────┘
//
//   compute   apply due crashes, deliver tick-T messages in canonical
//             (dst, src, seq) order, act every owned diner; sends for ANY
//             destination are appended to outbox[me][shard_of(dst)] with
//             their delivery tick fixed at send time.
//   barrier A every shard's sends for tick T exist; nobody reads yet.
//   exchange  shard s drains outbox[*][s] into its delivery wheel.
//   barrier B all outboxes are empty; tick T+1 may begin.
//
// Why this is bit-reproducible at ANY shard count (the pinned contract,
// tests/test_soa_engine.cpp): a diner's evolution is a pure function of the
// multiset of messages delivered to it per tick and its own counters.
// Draws are counter-based per diner, delays are a pure hash of
// (seed, src, per-source seq), and per-tick inboxes are sorted by the total
// order (dst, src, seq) before delivery — so neither draw interleaving nor
// outbox arrival order (the only things a shard layout can change) is
// observable. The run signature folds shard-commutative sums and per-diner
// state hashes only; merged event streams are sorted by (tick, pid), a
// total order per (diner, program point) since each diner emits in program
// order on exactly one shard.
#pragma once

#include <algorithm>
#include <barrier>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/flat_dining.hpp"
#include "sim/trace.hpp"
#include "sim/types.hpp"

namespace wfd::sim {

struct FlatResult {
  FlatStats stats;
  std::uint64_t signature = 0;  ///< shard-count-invariant run fingerprint
  std::uint64_t in_flight = 0;  ///< messages still queued at the end
  std::vector<Event> events;    ///< merged (tick, pid) stream, if recorded
};

namespace detail_flat {

inline std::uint64_t fold64(std::uint64_t acc, std::uint64_t value) {
  std::uint64_t lane = acc ^ (value + 0x9e3779b97f4a7c15ULL);
  return splitmix64(lane);
}

}  // namespace detail_flat

/// Run the flat dining workload to completion. Bit-identical results for
/// any `config.shards` (including oversubscribed counts beyond the core
/// count): same FlatStats, same signature, same merged event stream.
inline FlatResult run_flat(const FlatConfig& config) {
  FlatConfig cfg = config;
  if (cfg.n < 2) cfg.n = 2;
  std::uint32_t shards = cfg.shards;
  if (shards < 1) shards = 1;
  if (shards > cfg.n) shards = cfg.n;

  std::vector<std::unique_ptr<FlatShard>> table;
  table.reserve(shards);
  for (std::uint32_t s = 0; s < shards; ++s) {
    table.push_back(std::make_unique<FlatShard>(cfg, s, shards));
  }
  // outbox[from][to]: written by shard `from` during compute, drained by
  // shard `to` during exchange. The two barriers separate the phases, so
  // no slot is ever touched by two threads at once.
  std::vector<std::vector<std::vector<FlatMsg>>> outbox(shards);
  for (auto& row : outbox) row.resize(shards);

  std::barrier sync(static_cast<std::ptrdiff_t>(shards));
  const auto worker = [&](std::uint32_t s) {
    for (Time now = 0; now < cfg.steps; ++now) {
      table[s]->tick(now, outbox[s]);
      sync.arrive_and_wait();  // A: all sends for this tick are staged
      for (std::uint32_t from = 0; from < shards; ++from) {
        std::vector<FlatMsg>& box = outbox[from][s];
        for (const FlatMsg& msg : box) table[s]->accept(msg);
        box.clear();
      }
      sync.arrive_and_wait();  // B: all outboxes drained
    }
  };
  if (shards == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(shards - 1);
    for (std::uint32_t s = 1; s < shards; ++s) {
      pool.emplace_back(worker, s);
    }
    worker(0);
    for (std::thread& t : pool) t.join();
  }

  FlatResult result;
  std::uint64_t state_fold = 0;
  for (const auto& shard : table) {
    const FlatStats& s = shard->stats();
    result.stats.steps += s.steps;
    result.stats.messages_sent += s.messages_sent;
    result.stats.messages_delivered += s.messages_delivered;
    result.stats.messages_dropped += s.messages_dropped;
    result.stats.meals += s.meals;
    result.stats.crashes += s.crashes;
    result.in_flight += shard->in_flight();
    state_fold += shard->state_fold();  // commutative across shards
  }

  if (cfg.record_events) {
    std::vector<FlatShard::Rec> merged;
    for (const auto& shard : table) {
      merged.insert(merged.end(), shard->events().begin(),
                    shard->events().end());
    }
    // Each diner lives on one shard and emits in tick order, so a stable
    // sort by (tick, pid) yields one canonical stream per run.
    std::stable_sort(merged.begin(), merged.end(),
                     [](const FlatShard::Rec& a, const FlatShard::Rec& b) {
                       if (a.time != b.time) return a.time < b.time;
                       return a.pid < b.pid;
                     });
    result.events.reserve(merged.size());
    for (const FlatShard::Rec& rec : merged) {
      Event event;
      event.time = rec.time;
      event.pid = rec.pid;
      if (rec.kind == 1) {
        event.kind = EventKind::kCrash;
      } else {
        event.kind = EventKind::kDinerTransition;
        event.a = 0;  // instance id (single flat instance)
        event.b = rec.a;
        event.c = rec.b;
      }
      result.events.push_back(event);
    }
  }

  // Signature: stats (order-fixed) + commutative state fold + event stream.
  using detail_flat::fold64;
  std::uint64_t sig = 0x736861726465642dULL ^ cfg.seed;
  sig = fold64(sig, result.stats.steps);
  sig = fold64(sig, result.stats.messages_sent);
  sig = fold64(sig, result.stats.messages_delivered);
  sig = fold64(sig, result.stats.messages_dropped);
  sig = fold64(sig, result.stats.meals);
  sig = fold64(sig, result.stats.crashes);
  sig = fold64(sig, result.in_flight);
  sig = fold64(sig, state_fold);
  for (const Event& event : result.events) {
    sig = fold64(sig, event.time);
    sig = fold64(sig, (static_cast<std::uint64_t>(event.pid) << 8) |
                          static_cast<std::uint64_t>(event.kind));
    sig = fold64(sig, event.b ^ (event.c << 32));
  }
  result.signature = sig;

  // Observability mirror: flat.* counters, plus the merged event stream
  // replayed through a registry-bound Trace so sim.events.* counters and a
  // Perfetto export agree exactly (pinned by the obs parity test).
  if (cfg.metrics != nullptr) {
    obs::Registry& registry = *cfg.metrics;
    const auto steps_id = registry.counter("flat.steps");
    const auto sent_id = registry.counter("flat.sent");
    const auto delivered_id = registry.counter("flat.delivered");
    const auto dropped_id = registry.counter("flat.dropped");
    const auto meals_id = registry.counter("flat.meals");
    const auto crashes_id = registry.counter("flat.crashes");
    const auto shards_id = registry.gauge("flat.shards");
    obs::Scope scope(registry);
    scope.add(steps_id, result.stats.steps);
    scope.add(sent_id, result.stats.messages_sent);
    scope.add(delivered_id, result.stats.messages_delivered);
    scope.add(dropped_id, result.stats.messages_dropped);
    scope.add(meals_id, result.stats.meals);
    scope.add(crashes_id, result.stats.crashes);
    registry.set_gauge(shards_id, static_cast<double>(shards));
    if (!result.events.empty()) {
      Trace mirror(result.events.size());
      mirror.bind_metrics(&registry);
      for (const Event& event : result.events) mirror.emit(event);
    }
  }
  return result;
}

}  // namespace wfd::sim
