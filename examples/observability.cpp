// Observability tour: run a seeded 5-process dining configuration with a
// metrics registry and full trace capture, print the registry snapshot,
// export the event stream as a Perfetto/Chrome trace_event file, and run
// an instrumented model check whose per-level spans land in the same file
// format. Open the outputs in ui.perfetto.dev.
//
//   $ ./observability [trace.json [mc_spans.json]]
#include <fstream>
#include <iostream>

#include "fuzz/oracles.hpp"
#include "mc/gkk_model.hpp"
#include "obs/metrics.hpp"
#include "obs/perfetto.hpp"
#include "obs/span.hpp"

int main(int argc, char** argv) {
  using namespace wfd;
  const std::string trace_path = argc > 1 ? argv[1] : "trace.json";
  const std::string spans_path = argc > 2 ? argv[2] : "mc_spans.json";

  // --- a captured, metered simulation run ---------------------------------
  fuzz::FuzzConfig config;
  config.target = fuzz::TargetKind::kDining;
  config.n = 5;
  config.seed = 42;
  config.steps = 30000;

  obs::Registry registry;
  fuzz::RunCapture capture;
  capture.metrics = &registry;
  const fuzz::RunResult run = fuzz::run_config(config, capture);

  std::cout << "dining run: " << run.stats.steps << " steps, "
            << capture.events.size() << " events captured"
            << (capture.truncated ? " (TRUNCATED)" : "") << "\n";
  std::cout << "registry snapshot: " << registry.snapshot().to_json() << "\n";

  std::ofstream trace_out(trace_path);
  const obs::ExportStats stats = obs::write_perfetto(capture.events, trace_out);
  std::cout << "wrote " << stats.emitted << " trace events to " << trace_path
            << " (load it in ui.perfetto.dev)\n";

  // The export invariant the obs-smoke tests enforce: per-kind event counts
  // in the document equal the registry's sim.events.* counters.
  std::ostringstream copy;
  obs::write_perfetto(capture.events, copy);
  auto expected = obs::expected_counts_from(registry.snapshot());
  std::string why;
  const bool consistent =
      obs::validate_trace_json(copy.str(), &expected, &why);
  std::cout << "export counts vs registry counters: "
            << (consistent ? "match" : why) << "\n";

  // --- an instrumented model check ----------------------------------------
  obs::Registry mc_registry;
  obs::SpanLog spans;
  mc::CheckOptions options;
  options.metrics = &mc_registry;
  options.spans = &spans;
  const mc::CheckResult check =
      mc::check_gkk(mc::GkkBoxSemantics::kLockout, options);
  std::cout << "\nmodel check: " << check.states << " states in "
            << check.wall_ms << " ms across " << spans.spans.size()
            << " spans\n";
  std::cout << "mc registry: " << mc_registry.snapshot().to_json() << "\n";
  std::ofstream spans_out(spans_path);
  obs::write_perfetto_spans(spans, spans_out);
  std::cout << "wrote per-level spans to " << spans_path << "\n";

  return consistent && check.ok() ? 0 : 1;
}
