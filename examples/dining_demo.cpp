// Dining demo: five philosophers on a ring, scheduled by wait-free dining
// under eventual weak exclusion, with a scripted detector mistake (watch a
// real scheduling violation happen and then stop) and a crash (watch the
// survivors keep eating).
//
//   $ ./dining_demo
#include <iomanip>
#include <iostream>

#include "dining/monitors.hpp"
#include "graph/conflict_graph.hpp"
#include "harness/rig.hpp"

int main() {
  using namespace wfd;

  // The box's <>P wrongfully suspects across one edge early on — forcing
  // the scheduler into a (finite) mistake window.
  harness::RigOptions options{.seed = 7, .n = 5};
  options.mistakes = {{0, 1, 1000, 3000}, {1, 0, 1200, 2600}};
  harness::Rig rig(options);

  auto instance = rig.add_wait_free_dining(10, 1, graph::make_ring(5));
  auto clients = rig.add_clients(
      instance, dining::ClientConfig{.think_min = 2, .think_max = 8,
                                     .eat_min = 3, .eat_max = 9});
  dining::DiningMonitor monitor(rig.engine, instance.config);
  dining::DiningMonitor::attach(rig.engine, monitor);

  rig.engine.schedule_crash(3, 20000);
  rig.engine.init();

  std::cout << "tick      ";
  for (int d = 0; d < 5; ++d) std::cout << " D" << d << "        ";
  std::cout << "violations\n" << std::string(70, '-') << '\n';
  for (int slice = 0; slice < 12; ++slice) {
    rig.engine.run(5000);
    std::cout << std::setw(8) << rig.engine.now() << "  ";
    for (std::uint32_t d = 0; d < 5; ++d) {
      std::cout << std::setw(9) << std::left
                << (rig.engine.is_live(d)
                        ? dining::to_string(monitor.current_state(d))
                        : "CRASHED")
                << std::right << ' ';
    }
    std::cout << std::setw(6) << monitor.exclusion_violations() << '\n';
  }

  std::cout << "\nsummary\n-------\n";
  for (std::uint32_t d = 0; d < 5; ++d) {
    std::cout << "philosopher " << d << ": " << monitor.meals(d) << " meals, "
              << "longest hunger " << monitor.max_wait(d) << " ticks"
              << (rig.engine.is_correct(d) ? "" : "  (crashed at t=20000)")
              << '\n';
  }
  std::cout << "scheduling mistakes: " << monitor.exclusion_violations()
            << " (last at t=" << monitor.last_violation()
            << " — inside the detector's lying window, none after)\n";
  std::string detail;
  const bool wait_free = monitor.wait_free(rig.engine.now(), 20000, &detail);
  std::cout << "wait-freedom: " << (wait_free ? "held" : detail) << '\n';
  return wait_free && monitor.violations_since(5000) == 0 ? 0 : 1;
}
