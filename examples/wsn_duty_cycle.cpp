// WSN duty-cycle example (the paper's Section 2 motivation): a cluster of
// three battery-limited sensors keeps an area covered far longer than any
// single battery by taking turns on duty through a wait-free <>WX dining
// scheduler. Depleted sensors crash; the survivors keep covering.
//
//   $ ./wsn_duty_cycle
#include <iomanip>
#include <iostream>

#include "dining/instance.hpp"
#include "graph/conflict_graph.hpp"
#include "harness/rig.hpp"
#include "wsn/duty_cycle.hpp"

int main() {
  using namespace wfd;

  constexpr std::uint32_t kSensors = 3;
  constexpr std::uint64_t kBattery = 4000;  // on-duty ticks per sensor

  harness::Rig rig(harness::RigOptions{.seed = 11, .n = kSensors});
  auto instance =
      rig.add_wait_free_dining(10, 3, graph::make_clique(kSensors));

  wsn::ClusterMonitor monitor(3, {0, 1, 2});
  rig.engine.trace().subscribe(
      [&monitor](const sim::Event& e) { monitor.on_event(e); });

  std::vector<std::shared_ptr<wsn::SensorNode>> sensors;
  for (std::uint32_t i = 0; i < kSensors; ++i) {
    auto sensor = std::make_shared<wsn::SensorNode>(
        *instance.diners[i],
        wsn::SensorConfig{.battery = kBattery, .duty_length = 40,
                          .rest_length = 5});
    rig.hosts[i]->add_component(sensor, {});
    sensors.push_back(sensor);
  }
  rig.engine.init();

  std::cout << "tick      battery0  battery1  battery2  on-duty\n";
  std::cout << std::string(52, '-') << '\n';
  for (int slice = 0; slice < 16; ++slice) {
    rig.engine.run(2500);
    std::cout << std::setw(8) << rig.engine.now() << "  ";
    for (const auto& sensor : sensors) {
      std::cout << std::setw(8) << sensor->battery() << "  ";
    }
    for (std::uint32_t i = 0; i < kSensors; ++i) {
      if (sensors[i]->on_duty() && rig.engine.is_live(i)) {
        std::cout << 'S' << i << ' ';
      }
    }
    std::cout << '\n';
  }
  monitor.finalize(rig.engine.now());

  std::cout << "\ncluster lifetime : " << monitor.lifetime() << " ticks"
            << "  (single always-on battery would last ~" << kBattery << ")\n"
            << "coverage         : "
            << 100.0 * monitor.coverage_fraction() << " %\n"
            << "redundant duty   : "
            << 100.0 * monitor.redundancy_fraction()
            << " %  (<>WX scheduling mistakes cost energy, not correctness)\n";
  for (std::uint32_t i = 0; i < kSensors; ++i) {
    std::cout << "sensor " << i << "        : " << sensors[i]->shifts()
              << " shifts, " << (rig.engine.is_live(i) ? "alive" : "depleted")
              << '\n';
  }
  return monitor.lifetime() > 2 * kBattery ? 0 : 1;
}
