// The equivalence theorem, end to end: a wait-free dining service under
// eventual weak exclusion encapsulates exactly the synchrony of <>P — so
// it must be able to power consensus. This example wires the chain:
//
//   WF-<>WX dining boxes  --Alg.1/2-->  extracted <>P  -->  Chandra-Toueg
//   (the paper's reduction)                 |                 consensus
//                                           +-->  Omega leader election
//
//   $ ./consensus_from_dining
#include <iostream>
#include <memory>

#include "consensus/consensus.hpp"
#include "harness/rig.hpp"
#include "reduce/extraction.hpp"

int main() {
  using namespace wfd;
  constexpr std::uint32_t kN = 3;

  harness::Rig rig(harness::RigOptions{.seed = 4242, .n = kN,
                                       .detector_lag = 25});
  // The dining black box (its internal oracle is invisible to everything
  // below — the reduction rebuilds the detector from scheduling alone).
  reduce::WaitFreeBoxFactory box(
      [&rig](sim::ProcessId p) { return rig.detectors[p].get(); });
  auto extraction = reduce::build_full_extraction(rig.hosts, box, {});

  // Consensus participants query the EXTRACTED detectors.
  consensus::ConsensusConfig config;
  config.port = 500;
  config.members = {0, 1, 2};
  std::vector<std::shared_ptr<consensus::ConsensusParticipant>> participants;
  for (std::uint32_t m = 0; m < kN; ++m) {
    auto participant = std::make_shared<consensus::ConsensusParticipant>(
        config, m, extraction.detectors[m].get());
    rig.hosts[m]->add_component(participant, {500});
    participants.push_back(participant);
  }
  for (std::uint32_t m = 0; m < kN; ++m) {
    participants[m]->propose(1000 + m);
    std::cout << "p" << m << " proposes " << 1000 + m << '\n';
  }

  // Adversity: crash p2 (including its dining threads) mid-run.
  rig.engine.schedule_crash(2, 5000);
  rig.engine.init();
  const bool done = rig.engine.run_until(
      [&] {
        return participants[0]->decided() && participants[1]->decided();
      },
      2000000, 128);

  std::cout << "\np2 crashed at t=5000 (detected via dining-schedule "
               "observations only)\n";
  if (!done) {
    std::cout << "consensus did not terminate — unexpected\n";
    return 1;
  }
  // Consensus can decide before the extraction has fully converged; give
  // the witnesses time to settle before consulting the leader oracle.
  rig.engine.run(150000);
  std::cout << "p0 decides " << participants[0]->decision() << " (round "
            << participants[0]->round() << ")\n"
            << "p1 decides " << participants[1]->decision() << " (round "
            << participants[1]->round() << ")\n";

  consensus::LeaderElector elector0(kN, extraction.detectors[0].get(), 0);
  consensus::LeaderElector elector1(kN, extraction.detectors[1].get(), 1);
  std::cout << "leaders (Omega from the extracted detector): p0 sees p"
            << elector0.leader() << ", p1 sees p" << elector1.leader()
            << "\n\n";

  const bool agree =
      participants[0]->decision() == participants[1]->decision();
  std::cout << (agree ? "AGREEMENT — a dining scheduler is, synchrony-wise, "
                        "a failure detector.\n"
                      : "DISAGREEMENT — bug!\n");
  return agree && elector0.leader() == elector1.leader() ? 0 : 1;
}
