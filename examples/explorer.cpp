// explorer — command-line scenario runner for poking at the library:
//
//   ./explorer --scenario dining     --n 5 --seed 42 --steps 80000
//   ./explorer --scenario reduction  --seed 7 --crash 5000 --timeline
//   ./explorer --scenario wsn        --cells 4 --redundancy 2
//
// Flags: --scenario {dining|reduction|wsn}   what to run
//        --n / --cells / --redundancy        system size knobs
//        --seed, --steps, --crash <t>        run shape
//        --timeline                          ASCII diner timeline
//        --delays                            per-channel delay statistics
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "dining/monitors.hpp"
#include "graph/conflict_graph.hpp"
#include "harness/rig.hpp"
#include "reduce/extraction.hpp"
#include "sim/trace_tools.hpp"
#include "wsn/duty_cycle.hpp"
#include "wsn/network.hpp"

namespace {

using namespace wfd;

struct Options {
  std::string scenario = "dining";
  std::uint32_t n = 5;
  std::uint32_t cells = 4;
  std::uint32_t redundancy = 2;
  std::uint64_t seed = 1;
  std::uint64_t steps = 80000;
  sim::Time crash = 0;  // 0 = no crash
  bool timeline = false;
  bool delays = false;
};

Options parse(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--scenario") options.scenario = next();
    else if (arg == "--n") options.n = static_cast<std::uint32_t>(std::stoul(next()));
    else if (arg == "--cells") options.cells = static_cast<std::uint32_t>(std::stoul(next()));
    else if (arg == "--redundancy") options.redundancy = static_cast<std::uint32_t>(std::stoul(next()));
    else if (arg == "--seed") options.seed = std::stoull(next());
    else if (arg == "--steps") options.steps = std::stoull(next());
    else if (arg == "--crash") options.crash = std::stoull(next());
    else if (arg == "--timeline") options.timeline = true;
    else if (arg == "--delays") options.delays = true;
    else {
      std::cerr << "unknown flag: " << arg << "\n";
      std::exit(2);
    }
  }
  return options;
}

void maybe_print_delays(const sim::DelayStats& stats, std::uint32_t n) {
  std::cout << "\nchannel delay statistics (matched " << stats.matched()
            << " messages):\n";
  for (sim::ProcessId src = 0; src < n && src < 4; ++src) {
    for (sim::ProcessId dst = 0; dst < n && dst < 4; ++dst) {
      if (src == dst) continue;
      const sim::Summary& channel = stats.channel(src, dst);
      if (channel.count() == 0) continue;
      std::cout << "  " << src << " -> " << dst << ": n=" << channel.count()
                << " mean=" << channel.mean() << " p95="
                << channel.percentile(0.95) << '\n';
    }
  }
}

int run_dining(const Options& options) {
  harness::Rig rig(harness::RigOptions{.seed = options.seed, .n = options.n});
  auto instance =
      rig.add_wait_free_dining(10, 1, graph::make_ring(options.n));
  auto clients = rig.add_clients(instance, dining::ClientConfig{});
  dining::DiningMonitor monitor(rig.engine, instance.config);
  dining::DiningMonitor::attach(rig.engine, monitor);
  sim::DinerTimeline timeline(1, instance.config.members, options.steps / 72);
  sim::DelayStats delays;
  rig.engine.trace().subscribe([&](const sim::Event& e) {
    timeline.on_event(e);
    delays.on_event(e);
  });
  if (options.crash != 0) rig.engine.schedule_crash(options.n - 1, options.crash);
  rig.engine.init();
  rig.engine.run(options.steps);

  std::cout << "wait-free <>WX dining, ring of " << options.n << ", seed "
            << options.seed << ", " << options.steps << " steps\n\n";
  for (std::uint32_t d = 0; d < options.n; ++d) {
    std::cout << "diner " << d << ": " << monitor.meals(d) << " meals, "
              << "max wait " << monitor.max_wait(d)
              << (rig.engine.is_correct(d) ? "" : "  [crashed]") << '\n';
  }
  std::cout << "exclusion violations: " << monitor.exclusion_violations()
            << "\n";
  if (options.timeline) {
    std::cout << "\ntimeline ('.' think, 'h' hungry, 'E' eat, 'x' exit, '#' "
                 "crash):\n"
              << timeline.render(rig.engine.now());
  }
  if (options.delays) maybe_print_delays(delays, options.n);
  return 0;
}

int run_reduction(const Options& options) {
  harness::Rig rig(harness::RigOptions{.seed = options.seed, .n = 2});
  reduce::WaitFreeBoxFactory factory(
      [&rig](sim::ProcessId p) { return rig.detectors[p].get(); });
  auto extraction = reduce::build_full_extraction(rig.hosts, factory, {});
  sim::DinerTimeline timeline(0x1000, {0, 1}, options.steps / 72);
  rig.engine.trace().subscribe(
      [&](const sim::Event& e) { timeline.on_event(e); });
  if (options.crash != 0) rig.engine.schedule_crash(1, options.crash);
  rig.engine.init();
  rig.engine.run(options.steps);

  const auto* pair = extraction.find(0, 1);
  std::cout << "reduction over the real box, seed " << options.seed << ", "
            << options.steps << " steps\n\n"
            << "witness meals: " << pair->witness->meals()
            << ", subject meals: " << pair->subject_threads->meals()
            << ", pings: " << pair->subject_threads->pings_sent() << '\n'
            << "p0 " << (pair->witness->suspects_subject() ? "SUSPECTS"
                                                           : "trusts")
            << " p1"
            << (options.crash != 0 ? "  (p1 crashed at t=" +
                                         std::to_string(options.crash) + ")"
                                   : "")
            << '\n';
  if (options.timeline) {
    std::cout << "\nDX_0 timeline (witness thread 0 vs subject thread 0):\n"
              << timeline.render(rig.engine.now());
  }
  return 0;
}

int run_wsn(const Options& options) {
  const wsn::NetworkLayout layout =
      wsn::make_ring_network(options.cells, options.redundancy);
  harness::Rig rig(harness::RigOptions{.seed = options.seed,
                                       .n = layout.sensor_count()});
  auto instance = rig.add_wait_free_dining(10, 3, layout.conflicts);
  std::vector<sim::ProcessId> members;
  for (sim::ProcessId p = 0; p < layout.sensor_count(); ++p) {
    members.push_back(p);
  }
  wsn::NetworkMonitor monitor(3, layout, members);
  rig.engine.trace().subscribe(
      [&](const sim::Event& e) { monitor.on_event(e); });
  std::vector<std::shared_ptr<wsn::SensorNode>> sensors;
  for (std::uint32_t s = 0; s < layout.sensor_count(); ++s) {
    auto sensor = std::make_shared<wsn::SensorNode>(
        *instance.diners[s], wsn::SensorConfig{.battery = 5000});
    rig.hosts[s]->add_component(sensor, {});
    sensors.push_back(sensor);
  }
  rig.engine.init();
  rig.engine.run(options.steps);
  monitor.finalize(rig.engine.now());

  std::cout << "WSN: " << options.cells << " cells x " << options.redundancy
            << " sensors, seed " << options.seed << "\n\n";
  for (std::uint32_t cell = 0; cell < options.cells; ++cell) {
    std::cout << "cell " << cell << ": coverage "
              << 100.0 * monitor.cell_coverage(cell) << " %, redundancy "
              << 100.0 * monitor.redundancy_fraction(cell) << " %\n";
  }
  std::cout << "network lifetime: " << monitor.network_lifetime()
            << " ticks\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse(argc, argv);
  if (options.scenario == "dining") return run_dining(options);
  if (options.scenario == "reduction") return run_reduction(options);
  if (options.scenario == "wsn") return run_wsn(options);
  std::cerr << "unknown scenario '" << options.scenario
            << "' (want dining|reduction|wsn)\n";
  return 2;
}
