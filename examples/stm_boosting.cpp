// Contention-manager example (the paper's Section 3 motivation): four
// clients run read-modify-write transactions against an obstruction-free
// versioned-register store. Raw, they abort each other constantly; behind
// a wait-free <>WX dining contention manager, the conflicts serialize and
// every client commits — obstruction freedom boosted to wait freedom.
//
//   $ ./stm_boosting
#include <iomanip>
#include <iostream>
#include <memory>

#include "detect/oracle.hpp"
#include "dining/instance.hpp"
#include "graph/conflict_graph.hpp"
#include "sim/engine.hpp"
#include "stm/stm.hpp"

namespace {

using namespace wfd;

struct Result {
  std::uint64_t total_commits = 0;
  std::uint64_t min_commits = ~0ull;
  std::uint64_t aborts = 0;
  std::uint64_t worst_streak = 0;
};

Result run(bool use_cm) {
  constexpr std::uint32_t kClients = 4;
  sim::Engine engine(sim::EngineConfig{.seed = 99});
  std::vector<sim::ComponentHost*> hosts;
  for (sim::ProcessId p = 0; p < kClients + 1; ++p) {
    auto host = std::make_unique<sim::ComponentHost>();
    hosts.push_back(host.get());
    engine.add_process(std::move(host));
  }
  auto server = std::make_shared<stm::StmServer>(5, 2);
  hosts[0]->add_component(server, {5});

  std::vector<std::shared_ptr<sim::Component>> keep_alive;
  dining::BuiltInstance cm;
  if (use_cm) {
    std::vector<const detect::FailureDetector*> fds;
    for (std::uint32_t c = 0; c < kClients; ++c) {
      auto oracle = std::make_shared<detect::OracleEventuallyPerfect>(
          engine, c + 1, kClients + 1, 25,
          std::vector<detect::MistakeWindow>{}, 0xFD);
      hosts[c + 1]->add_component(oracle, {});
      keep_alive.push_back(oracle);
      fds.push_back(oracle.get());
    }
    dining::DiningInstanceConfig config;
    config.port = 7;
    config.tag = 9;
    for (std::uint32_t c = 0; c < kClients; ++c) config.members.push_back(c + 1);
    config.graph = graph::make_clique(kClients);
    std::vector<sim::ComponentHost*> client_hosts(hosts.begin() + 1,
                                                  hosts.end());
    cm = dining::build_dining_instance(client_hosts, config, fds);
  }

  std::vector<std::shared_ptr<stm::TxClient>> clients;
  for (std::uint32_t c = 0; c < kClients; ++c) {
    stm::TxClientConfig config;
    config.server = 0;
    config.server_port = 5;
    config.reply_port = 6;
    config.registers = {0, 1};
    config.step_work = 6;
    auto client = std::make_shared<stm::TxClient>(
        config, use_cm ? cm.diners[c].get() : nullptr);
    hosts[c + 1]->add_component(client, {6});
    clients.push_back(client);
  }
  engine.init();
  engine.run(150000);

  Result result;
  for (const auto& client : clients) {
    result.total_commits += client->commits();
    result.min_commits = std::min(result.min_commits, client->commits());
    result.aborts += client->aborts();
    result.worst_streak =
        std::max(result.worst_streak, client->max_consecutive_aborts());
  }
  return result;
}

}  // namespace

int main() {
  std::cout << "Obstruction-free STM, 4 clients hammering 2 registers:\n\n";
  const Result raw = run(false);
  const Result managed = run(true);
  std::cout << std::setw(22) << " " << std::setw(12) << "raw"
            << std::setw(12) << "managed" << '\n'
            << std::string(46, '-') << '\n'
            << std::setw(22) << "total commits" << std::setw(12)
            << raw.total_commits << std::setw(12) << managed.total_commits
            << '\n'
            << std::setw(22) << "worst client commits" << std::setw(12)
            << raw.min_commits << std::setw(12) << managed.min_commits << '\n'
            << std::setw(22) << "aborts" << std::setw(12) << raw.aborts
            << std::setw(12) << managed.aborts << '\n'
            << std::setw(22) << "worst abort streak" << std::setw(12)
            << raw.worst_streak << std::setw(12) << managed.worst_streak
            << "\n\n";
  std::cout << "The dining-backed contention manager funnels conflicting\n"
               "transactions into an exclusive suffix: aborts collapse and\n"
               "the slowest client's progress becomes wait-free.\n";
  return managed.aborts < raw.aborts && managed.min_commits > 0 ? 0 : 1;
}
