// Quickstart: extract an eventually perfect failure detector from a
// black-box wait-free dining service (the paper's reduction), watch it
// converge, then crash the subject and watch it detect.
//
//   $ ./quickstart
//
// Walks through the library's core API: Engine + ComponentHost processes,
// a WF-<>WX dining box, build_full_extraction, and the FailureDetector
// query interface.
#include <iostream>

#include "harness/rig.hpp"
#include "reduce/extraction.hpp"

int main() {
  using namespace wfd;

  // Two processes, each with an internal <>P oracle the *box* uses (the
  // reduction itself never touches it — that is the whole point: it
  // rebuilds <>P from scheduling behaviour alone).
  harness::Rig rig(harness::RigOptions{.seed = 2024, .n = 2});

  // The black box: our wait-free dining under eventual weak exclusion.
  reduce::WaitFreeBoxFactory factory(
      [&rig](sim::ProcessId p) { return rig.detectors[p].get(); });

  // The paper's construction: per ordered pair, two dining instances, a
  // witness pair at the watcher and a subject pair at the subject.
  auto extraction = reduce::build_full_extraction(rig.hosts, factory, {});

  // Process 1 will crash mid-run.
  const sim::Time crash_at = 60000;
  rig.engine.schedule_crash(1, crash_at);
  rig.engine.init();

  std::cout << "time     p0 suspects p1?   p1 suspects p0?\n";
  std::cout << "-----------------------------------------\n";
  bool was_0 = true, was_1 = true;  // Alg. 1 starts suspicious
  for (int slice = 0; slice <= 20; ++slice) {
    const bool s0 = extraction.detectors[0]->suspects(1);
    const bool s1 = extraction.detectors[1]->suspects(0);
    if (slice == 0 || s0 != was_0 || s1 != was_1) {
      std::cout << (rig.engine.now() < 10 ? "init " : "")
                << rig.engine.now() << "\t " << (s0 ? "suspect" : "trust  ")
                << "\t   " << (s1 ? "suspect" : "trust  ")
                << (rig.engine.now() >= crash_at ? "   (p1 crashed)" : "")
                << '\n';
      was_0 = s0;
      was_1 = s1;
    }
    rig.engine.run(6000);
  }

  const bool detected = extraction.detectors[0]->suspects(1);
  std::cout << "\np0's extracted detector "
            << (detected ? "permanently suspects" : "MISSED") << " crashed p1."
            << "\nThe suspicion came purely from dining-schedule observations:"
            << "\nwitness meals without a fresh ping from the subject.\n";
  return detected ? 0 : 1;
}
