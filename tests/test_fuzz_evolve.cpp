// The coverage-guided campaign's soundness contracts, pinned hard:
//
//  * prefix snapshots are bit-identical to cold replay — a run split into
//    milestones (runway families) or resumed in a forked child (crash-suffix
//    families) produces the same signature, stats, failures, retained trace
//    and obs counters as running the variant from t=0, on every conformance
//    vector and under both transit stores;
//  * the corpus is order-independent — merging shard directories is a file
//    union and loading admits the same set regardless of who wrote first;
//  * campaign results are a pure function of the options, independent of
//    --jobs; and
//  * coverage guidance earns its keep: at an equal run budget the evolved
//    campaign reaches strictly more feature-hash buckets than swarm
//    sampling (the tentpole's acceptance criterion).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "fuzz/corpus.hpp"
#include "fuzz/coverage.hpp"
#include "fuzz/evolve.hpp"
#include "fuzz/fuzzer.hpp"
#include "fuzz/mutators.hpp"
#include "fuzz/oracles.hpp"
#include "fuzz/snapshot.hpp"
#include "obs/metrics.hpp"
#include "scenario/adapters.hpp"
#include "scenario/scenario.hpp"
#include "sim/rng.hpp"

namespace wfd::fuzz {
namespace {

std::vector<std::string> vector_files() {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(WFD_VECTOR_DIR)) {
    const std::string name = entry.path().filename().string();
    if (name.find(".scenario.json") != std::string::npos) {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

struct CapturedRun {
  RunResult result;
  std::vector<sim::Event> events;
  std::string counters;  ///< registry snapshot, canonical text form
};

std::string counters_text(const obs::Registry& registry) {
  std::string text;
  for (const auto& [name, value] : registry.snapshot().sorted_counters()) {
    text += name + "=" + std::to_string(value) + "\n";
  }
  return text;
}

/// Cold reference run: full trace retention, bound registry.
CapturedRun run_cold_captured(const FuzzConfig& config,
                              sim::TransitKind transit) {
  obs::Registry registry;
  RunCapture capture;
  capture.transit = transit;
  capture.metrics = &registry;
  CapturedRun out;
  out.result = run_config(config, capture);
  out.events = std::move(capture.events);
  out.counters = counters_text(registry);
  return out;
}

/// The same run split into milestone stops via ConfigRun::advance_to.
CapturedRun run_split_captured(const FuzzConfig& config,
                               sim::TransitKind transit,
                               const std::vector<sim::Time>& stops) {
  obs::Registry registry;
  RunCapture capture;
  capture.transit = transit;
  capture.metrics = &registry;
  CapturedRun out;
  ConfigRun run(config, &capture);
  for (const sim::Time stop : stops) run.advance_to(stop);
  run.advance_to(config.steps);
  out.result = run.grade(config);
  run.fill_capture();
  out.events = std::move(capture.events);
  out.counters = counters_text(registry);
  return out;
}

void expect_same_stats(const RunStats& a, const RunStats& b,
                       const std::string& label) {
  EXPECT_EQ(a.steps, b.steps) << label;
  EXPECT_EQ(a.messages_sent, b.messages_sent) << label;
  EXPECT_EQ(a.messages_delivered, b.messages_delivered) << label;
  EXPECT_EQ(a.messages_dropped, b.messages_dropped) << label;
  EXPECT_EQ(a.messages_lost, b.messages_lost) << label;
  EXPECT_EQ(a.messages_duplicated, b.messages_duplicated) << label;
  EXPECT_EQ(a.messages_retransmitted, b.messages_retransmitted) << label;
  EXPECT_EQ(a.in_transit, b.in_transit) << label;
  EXPECT_EQ(a.crashes, b.crashes) << label;
  EXPECT_EQ(a.total_meals, b.total_meals) << label;
  EXPECT_EQ(a.exclusion_violations, b.exclusion_violations) << label;
  EXPECT_EQ(a.late_violations, b.late_violations) << label;
  EXPECT_EQ(a.last_violation, b.last_violation) << label;
  EXPECT_EQ(a.detector_flips, b.detector_flips) << label;
  EXPECT_EQ(a.late_suspicion_episodes, b.late_suspicion_episodes) << label;
  EXPECT_EQ(a.deadline, b.deadline) << label;
  EXPECT_EQ(a.wait_bound, b.wait_bound) << label;
}

void expect_same_run(const CapturedRun& cold, const CapturedRun& split,
                     const std::string& label) {
  EXPECT_EQ(cold.result.signature, split.result.signature) << label;
  expect_same_stats(cold.result.stats, split.result.stats, label);
  ASSERT_EQ(cold.result.failures.size(), split.result.failures.size())
      << label;
  for (std::size_t i = 0; i < cold.result.failures.size(); ++i) {
    EXPECT_EQ(cold.result.failures[i].oracle, split.result.failures[i].oracle)
        << label;
    EXPECT_EQ(cold.result.failures[i].at, split.result.failures[i].at)
        << label;
    EXPECT_EQ(cold.result.failures[i].detail,
              split.result.failures[i].detail)
        << label;
  }
  ASSERT_EQ(cold.events.size(), split.events.size()) << label;
  for (std::size_t i = 0; i < cold.events.size(); ++i) {
    const sim::Event& x = cold.events[i];
    const sim::Event& y = split.events[i];
    const bool same = x.time == y.time && x.kind == y.kind &&
                      x.pid == y.pid && x.a == y.a && x.b == y.b &&
                      x.c == y.c;
    ASSERT_TRUE(same) << label << " event " << i << ": "
                      << sim::to_string(x) << " vs " << sim::to_string(y);
  }
  EXPECT_EQ(cold.counters, split.counters) << label;
}

TEST(EvolveSnapshot, ResumeIsBitIdenticalToColdOnEveryConformanceVector) {
  const std::vector<std::string> files = vector_files();
  ASSERT_FALSE(files.empty());
  for (const std::string& file : files) {
    scenario::Scenario scenario;
    std::string error;
    ASSERT_TRUE(scenario::load_scenario_file(file, &scenario, &error))
        << file << ": " << error;
    const FuzzConfig config = normalize(scenario::to_fuzz_config(scenario));
    const std::vector<sim::Time> stops = {config.steps / 3,
                                          2 * config.steps / 3};
    for (const sim::TransitKind transit :
         {sim::TransitKind::kCalendar, sim::TransitKind::kSoa}) {
      const std::string label =
          scenario.name +
          (transit == sim::TransitKind::kSoa ? " [soa]" : " [calendar]");
      expect_same_run(run_cold_captured(config, transit),
                      run_split_captured(config, transit, stops), label);
    }
  }
}

/// Find a deterministic crash-suffix family by walking the mutator over
/// swarm parents with a fixed rng (the same path a campaign takes).
MutationPlan find_crash_suffix_family() {
  sim::Rng rng(42);
  CoverageMap coverage;
  for (int i = 0; i < 400; ++i) {
    const FuzzConfig parent =
        normalize(sample_config(7, i, legal_targets()));
    MutationPlan plan = mutate(parent, 6, rng, coverage, {});
    if (plan.crash_suffix_family && plan.variants.size() >= 2) return plan;
  }
  return {};
}

TEST(EvolveSnapshot, ForkedCrashInjectionEqualsColdReplay) {
  const MutationPlan plan = find_crash_suffix_family();
  ASSERT_GE(plan.variants.size(), 2u) << "no crash-suffix family found";

  SnapshotStats stats;
  const std::vector<FamilyResult> forked = run_family(plan, true, &stats);
  ASSERT_EQ(forked.size(), plan.variants.size());
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_GT(stats.forked_runs, 0u) << "fork path never engaged";
#endif

  for (std::size_t i = 0; i < forked.size(); ++i) {
    const FamilyResult cold = cold_family_run(plan.variants[i]);
    const std::string label = "variant " + std::to_string(i);
    EXPECT_EQ(forked[i].result.signature, cold.result.signature) << label;
    expect_same_stats(forked[i].result.stats, cold.result.stats, label);
    ASSERT_EQ(forked[i].result.failures.size(), cold.result.failures.size())
        << label;
    for (std::size_t f = 0; f < cold.result.failures.size(); ++f) {
      EXPECT_EQ(forked[i].result.failures[f].oracle,
                cold.result.failures[f].oracle)
          << label;
      EXPECT_EQ(forked[i].result.failures[f].at, cold.result.failures[f].at)
          << label;
    }
    EXPECT_EQ(forked[i].buckets, cold.buckets) << label;
  }
}

TEST(EvolveCoverage, FeatureHashIsStableAcrossTransitsAndCaptureModes) {
  // Satellite 1: same (config, seed) -> same feature hash, however the run
  // is instrumented or stored. The signature is the fold of run_features.
  for (int i = 0; i < 6; ++i) {
    const FuzzConfig config =
        normalize(sample_config(13, i, legal_targets()));
    const RunResult plain = run_config(config);
    const CapturedRun calendar =
        run_cold_captured(config, sim::TransitKind::kCalendar);
    const CapturedRun soa = run_cold_captured(config, sim::TransitKind::kSoa);
    EXPECT_EQ(plain.signature, calendar.result.signature);
    EXPECT_EQ(plain.signature, soa.result.signature);
    // Coverage buckets are a pure function of (config, result) too.
    EXPECT_EQ(coverage_buckets(config, plain),
              coverage_buckets(config, calendar.result));
  }
}

CorpusEntry make_entry(std::uint64_t seed_index) {
  const FuzzConfig config =
      normalize(sample_config(21, seed_index, legal_targets()));
  const FamilyResult run = cold_family_run(config);
  CorpusEntry entry;
  entry.config = run.config;
  entry.signature = run.result.signature;
  entry.buckets = run.buckets;
  return entry;
}

TEST(EvolveCorpus, EntryJsonRoundTripsBitExactly) {
  CorpusEntry entry = make_entry(0);
  entry.novel_bits = 17;
  const std::string text = corpus_entry_to_json(entry);
  EXPECT_NE(text.find("\"schema_version\": 1"), std::string::npos);
  CorpusEntry reloaded;
  std::string error;
  ASSERT_TRUE(corpus_entry_from_json(text, &reloaded, &error)) << error;
  EXPECT_EQ(reloaded.signature, entry.signature);
  EXPECT_EQ(reloaded.buckets, entry.buckets);
  EXPECT_EQ(config_to_json(reloaded.config), config_to_json(entry.config));
  EXPECT_EQ(corpus_entry_to_json(reloaded), text);
}

TEST(EvolveCorpus, MergeIsOrderIndependent) {
  namespace fs = std::filesystem;
  const fs::path base = fs::temp_directory_path() / "wfd_fuzz_corpus_merge";
  fs::remove_all(base);

  // Two shards with an overlapping entry, merged in both orders.
  const std::vector<CorpusEntry> shard_a = {make_entry(0), make_entry(1)};
  const std::vector<CorpusEntry> shard_b = {make_entry(1), make_entry(2),
                                            make_entry(3)};
  const auto save_shard = [](const std::vector<CorpusEntry>& entries,
                             const std::string& dir) {
    Corpus corpus;
    CoverageMap map;
    for (const CorpusEntry& entry : entries) corpus.admit(entry, map);
    std::string error;
    ASSERT_TRUE(corpus.save(dir, &error)) << error;
  };

  const std::string ab = (base / "ab").string();
  const std::string ba = (base / "ba").string();
  save_shard(shard_a, ab);
  save_shard(shard_b, ab);  // union: content-addressed files never clobber
  save_shard(shard_b, ba);
  save_shard(shard_a, ba);

  const auto load_signatures = [](const std::string& dir) {
    Corpus corpus;
    CoverageMap map;
    std::string error;
    corpus.load(dir, map, &error);
    EXPECT_TRUE(error.empty()) << error;
    std::set<std::uint64_t> signatures;
    for (const CorpusEntry& entry : corpus.entries()) {
      signatures.insert(entry.signature);
    }
    return std::make_pair(signatures, map.bits());
  };
  const auto [sig_ab, bits_ab] = load_signatures(ab);
  const auto [sig_ba, bits_ba] = load_signatures(ba);
  EXPECT_EQ(sig_ab, sig_ba);
  EXPECT_EQ(bits_ab, bits_ba);
  EXPECT_EQ(sig_ab.size(), 4u);  // the union, duplicates collapsed
  fs::remove_all(base);
}

TEST(EvolveCorpus, TruncatedEntrySurvivesReloadRoundTrip) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "wfd_fuzz_corpus_corrupt";
  fs::remove_all(dir);

  // A healthy corpus on disk...
  {
    Corpus corpus;
    CoverageMap map;
    for (std::uint64_t i = 0; i < 3; ++i) corpus.admit(make_entry(i), map);
    std::string error;
    ASSERT_TRUE(corpus.save(dir.string(), &error)) << error;
  }
  // ...plus the two artifacts of a writer killed mid-save: a truncated
  // entry that DID reach its final name (the pre-rename world this bugfix
  // retires, still possible via a torn disk), and an orphaned .tmp the
  // atomic path leaves behind when the kill lands before rename().
  const std::string full = corpus_entry_to_json(make_entry(7));
  {
    std::ofstream torn(dir / "00deadbeef000000.json", std::ios::binary);
    torn << full.substr(0, full.size() / 2);
  }
  {
    std::ofstream orphan(dir / "0123456789abcdef.json.4242.tmp",
                         std::ios::binary);
    orphan << full.substr(0, 10);
  }

  // Reload: the three healthy entries come back, the torn file is skipped
  // and counted, the .tmp is invisible to the *.json scan.
  Corpus reloaded;
  CoverageMap map;
  std::string error;
  EXPECT_EQ(reloaded.load(dir.string(), map, &error), 3u);
  EXPECT_EQ(reloaded.skipped_corrupt(), 1u);
  EXPECT_NE(error.find("00deadbeef000000"), std::string::npos) << error;
  std::set<std::uint64_t> signatures;
  for (const CorpusEntry& entry : reloaded.entries()) {
    signatures.insert(entry.signature);
  }
  EXPECT_EQ(signatures.size(), 3u);

  // Round trip: re-saving into a fresh directory carries every healthy
  // entry across unchanged (and nothing else).
  const fs::path copy = fs::temp_directory_path() / "wfd_fuzz_corpus_copy";
  fs::remove_all(copy);
  ASSERT_TRUE(reloaded.save(copy.string(), &error)) << error;
  Corpus round;
  CoverageMap map2;
  EXPECT_EQ(round.load(copy.string(), map2, &error), 3u);
  EXPECT_EQ(round.skipped_corrupt(), 0u);
  std::set<std::uint64_t> round_signatures;
  for (const CorpusEntry& entry : round.entries()) {
    round_signatures.insert(entry.signature);
  }
  EXPECT_EQ(round_signatures, signatures);
  // Atomic saves leave no .tmp droppings behind on the success path.
  for (const auto& file : fs::directory_iterator(copy)) {
    EXPECT_EQ(file.path().extension(), ".json") << file.path();
  }
  fs::remove_all(dir);
  fs::remove_all(copy);
}

EvolveOptions small_campaign() {
  EvolveOptions options;
  options.master_seed = 5;
  options.generations = 3;
  options.generation_size = 8;
  options.max_family = 4;
  options.shrink = false;
  return options;
}

TEST(EvolveCampaign, JobCountDoesNotChangeTheOutcome) {
  EvolveOptions options = small_campaign();
  options.jobs = 1;
  const EvolveResult one = run_evolve_campaign(options);
  options.jobs = 2;
  const EvolveResult two = run_evolve_campaign(options);
  options.jobs = 8;
  const EvolveResult eight = run_evolve_campaign(options);

  for (const EvolveResult* other : {&two, &eight}) {
    EXPECT_EQ(one.stats.executed, other->stats.executed);
    EXPECT_EQ(one.stats.failing, other->stats.failing);
    EXPECT_EQ(one.stats.novel, other->stats.novel);
    EXPECT_EQ(one.stats.coverage_bits, other->stats.coverage_bits);
    EXPECT_EQ(one.stats.corpus_entries, other->stats.corpus_entries);
    EXPECT_EQ(one.corpus_signatures, other->corpus_signatures);
    EXPECT_EQ(one.repros.size(), other->repros.size());
  }
}

TEST(EvolveCampaign, SnapshotModeDoesNotChangeTheOutcome) {
  EvolveOptions options = small_campaign();
  const EvolveResult snap = run_evolve_campaign(options);
  options.snapshot = false;
  const EvolveResult cold = run_evolve_campaign(options);
  EXPECT_EQ(snap.stats.executed, cold.stats.executed);
  EXPECT_EQ(snap.stats.failing, cold.stats.failing);
  EXPECT_EQ(snap.stats.coverage_bits, cold.stats.coverage_bits);
  EXPECT_EQ(snap.corpus_signatures, cold.corpus_signatures);
  // And the campaign actually used the snapshot paths in snapshot mode.
  EXPECT_GT(snap.stats.milestone_runs + snap.stats.forked_runs, 0u);
  EXPECT_EQ(cold.stats.milestone_runs + cold.stats.forked_runs, 0u);
}

TEST(EvolveCampaign, CoverageGuidanceBeatsSwarmAtEqualRunBudget) {
  // The tentpole's acceptance criterion: at an equal number of graded runs,
  // the evolved campaign's coverage map strictly dominates swarm sampling's
  // bucket count.
  EvolveOptions options;
  options.master_seed = 9;
  options.generations = 5;
  options.generation_size = 12;
  options.max_family = 5;
  options.shrink = false;
  const EvolveResult evolved = run_evolve_campaign(options);
  ASSERT_GT(evolved.stats.executed, 0u);

  CoverageMap swarm;
  for (std::uint64_t i = 0; i < evolved.stats.executed; ++i) {
    const FamilyResult run = cold_family_run(
        sample_config(options.master_seed, i, legal_targets()));
    swarm.add(run.buckets);
  }
  EXPECT_GT(evolved.stats.coverage_bits, swarm.bits())
      << "coverage guidance must beat swarm at " << evolved.stats.executed
      << " runs";
}

TEST(EvolveCampaign, BrokenTargetYieldsAReplayableRepro) {
  EvolveOptions options;
  options.master_seed = 3;
  options.generations = 2;
  options.generation_size = 6;
  options.max_family = 3;
  options.targets = {TargetKind::kBrokenForkBased};
  options.max_shrink_attempts = 60;
  const EvolveResult campaign = run_evolve_campaign(options);
  EXPECT_GT(campaign.stats.failing, 0u);
  ASSERT_FALSE(campaign.repros.empty());
  for (const ReproCase& repro : campaign.repros) {
    std::string why;
    EXPECT_TRUE(replay_case(repro, &why)) << why;
  }
}

TEST(EvolveCampaign, CorpusDirectoryPersistsAndReloads) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "wfd_fuzz_evolve_corpus";
  fs::remove_all(dir);

  EvolveOptions options = small_campaign();
  options.corpus_dir = dir.string();
  const EvolveResult first = run_evolve_campaign(options);
  EXPECT_GT(first.stats.corpus_entries, 0u);

  // A second campaign over the saved corpus starts from its coverage: every
  // saved signature is already known, so the reloaded corpus seeds the
  // parent pool instead of re-counting the same shapes as novel.
  const EvolveResult second = run_evolve_campaign(options);
  std::set<std::uint64_t> first_signatures(first.corpus_signatures.begin(),
                                           first.corpus_signatures.end());
  for (const std::uint64_t signature : first_signatures) {
    EXPECT_TRUE(std::binary_search(second.corpus_signatures.begin(),
                                   second.corpus_signatures.end(), signature));
  }
  EXPECT_GE(second.corpus_signatures.size(), first.corpus_signatures.size());
  fs::remove_all(dir);
}

}  // namespace
}  // namespace wfd::fuzz
