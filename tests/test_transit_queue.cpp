// CalendarQueue vs the ordering oracle it replaced: a binary min-heap over
// (deliver_at, seq), exactly the engine's pre-overhaul per-destination
// std::priority_queue<InTransit>. Randomized schedules (bursts, idle gaps,
// far-future tails) plus the engine's defer/re-queue pattern must produce
// identical delivery sequences.
#include <gtest/gtest.h>

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/rng.hpp"
#include "sim/transit_queue.hpp"

namespace wfd::sim {
namespace {

/// The pre-overhaul queue: min-heap by (deliver_at, seq).
struct HeapItem {
  Time deliver_at = 0;
  Message msg{};
  bool operator>(const HeapItem& other) const {
    if (deliver_at != other.deliver_at) return deliver_at > other.deliver_at;
    return msg.seq > other.msg.seq;
  }
};
using ReferenceHeap =
    std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>>;

Message make_msg(ProcessId src, std::uint64_t seq) {
  Message msg;
  msg.src = src;
  msg.dst = 0;
  msg.payload = Payload{7, seq, 0, 0};
  msg.seq = seq;
  return msg;
}

void push_both(CalendarQueue& queue, ReferenceHeap& heap, Time deliver_at,
               const Message& msg) {
  queue.push(deliver_at) = msg;
  heap.push(HeapItem{deliver_at, msg});
}

/// Drain everything due at `now` from the calendar queue.
std::vector<std::uint64_t> drain_all(CalendarQueue& queue, Time now) {
  std::vector<std::uint64_t> got;
  queue.drain_due(now, [&got](const InTransit& item) {
    got.push_back(item.msg.seq);
    return true;
  });
  return got;
}

/// Drain both queues at tick `now` and compare delivery order; returns the
/// number of messages delivered.
std::size_t drain_and_compare(CalendarQueue& queue, ReferenceHeap& heap,
                              Time now) {
  std::vector<std::uint64_t> expected;
  while (!heap.empty() && heap.top().deliver_at <= now) {
    expected.push_back(heap.top().msg.seq);
    heap.pop();
  }
  const std::vector<std::uint64_t> got = drain_all(queue, now);
  EXPECT_EQ(got, expected) << "divergence at tick " << now;
  return got.size();
}

TEST(CalendarQueue, MatchesReferenceHeapOnRandomSchedules) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    Rng rng(seed);
    CalendarQueue queue;
    ReferenceHeap heap;
    std::uint64_t seq = 0;
    std::size_t delivered = 0;
    Time now = 0;
    for (int round = 0; round < 4000; ++round) {
      // Advance the clock: usually by 1, sometimes a long idle gap (a rarely
      // scheduled destination), occasionally far past the calendar window.
      const std::uint64_t jump_kind = rng.below(100);
      now += jump_kind < 80 ? 1 : (jump_kind < 97 ? rng.range(2, 40) : rng.range(300, 1500));

      // A burst of sends with mixed near/far delays.
      const std::uint64_t sends = rng.below(6);
      for (std::uint64_t s = 0; s < sends; ++s) {
        const bool far = rng.chance(0.1);
        const Time delay = far ? rng.range(200, 5000) : rng.range(1, 32);
        push_both(queue, heap, now + delay,
                  make_msg(static_cast<ProcessId>(rng.below(8)), seq));
        ++seq;
      }
      EXPECT_EQ(queue.size(), heap.size());
      if (rng.chance(0.7)) delivered += drain_and_compare(queue, heap, now);
    }
    // Drain everything left so the whole sequence is compared.
    delivered += drain_and_compare(queue, heap, now + 10000);
    EXPECT_EQ(queue.size(), 0u);
    EXPECT_GT(delivered, 1000u);
  }
}

TEST(CalendarQueue, DeferredItemsStayFirstInOrder) {
  // The engine's receive phase: at most one message per sender per step;
  // the rest defer and must come back first, still in (deliver_at, seq)
  // order — exactly what the old heap's pop/re-push produced.
  Rng rng(99);
  CalendarQueue queue;
  ReferenceHeap heap;
  std::uint64_t seq = 0;
  Time now = 0;
  for (int round = 0; round < 2000; ++round) {
    now += rng.range(1, 3);
    for (std::uint64_t s = rng.below(5); s > 0; --s) {
      const Time delay = rng.range(1, 12);
      push_both(queue, heap, now + delay,
                make_msg(static_cast<ProcessId>(rng.below(3)), seq));
      ++seq;
    }

    // Reference: pop due items, deliver first-per-sender, re-push the rest.
    bool seen[3] = {false, false, false};
    std::vector<std::uint64_t> expected;
    std::vector<HeapItem> deferred;
    while (!heap.empty() && heap.top().deliver_at <= now) {
      HeapItem item = heap.top();
      heap.pop();
      if (seen[item.msg.src]) {
        deferred.push_back(item);
      } else {
        seen[item.msg.src] = true;
        expected.push_back(item.msg.seq);
      }
    }
    for (const HeapItem& item : deferred) heap.push(item);

    bool got_seen[3] = {false, false, false};
    std::vector<std::uint64_t> got;
    queue.drain_due(now, [&](const InTransit& item) {
      if (got_seen[item.msg.src]) return false;  // defer
      got_seen[item.msg.src] = true;
      got.push_back(item.msg.seq);
      return true;
    });
    ASSERT_EQ(got, expected) << "divergence at tick " << now;
    ASSERT_EQ(queue.size(), heap.size());
  }
}

TEST(CalendarQueue, PushDuringDrainLandsInTheFuture) {
  // The engine's consume callback may send: a handler delivery can push
  // into the very queue being drained. New items must never be visited in
  // the same drain (they are due strictly past now), including when their
  // tick's ring index aliases a due tick, and must come out at their own
  // tick later — the same behavior the heap gave the old engine.
  CalendarQueue queue;
  std::uint64_t next_seq = 0;
  for (Time t = 1; t <= 6; ++t) {
    queue.push(t) = make_msg(0, next_seq++);
  }
  std::vector<std::uint64_t> got;
  queue.drain_due(6, [&](const InTransit& item) {
    got.push_back(item.msg.seq);
    if (item.msg.seq == 0) {
      // Re-entrant pushes: one near (bucket), one aliasing a due tick's ring
      // index (2 + 256 — forced to the overflow band), one far.
      queue.push(7) = make_msg(1, next_seq++);        // seq 6
      queue.push(2 + 256) = make_msg(1, next_seq++);  // seq 7
      queue.push(900) = make_msg(1, next_seq++);      // seq 8
    }
    return true;
  });
  EXPECT_EQ(got, (std::vector<std::uint64_t>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(drain_all(queue, 7), (std::vector<std::uint64_t>{6}));
  EXPECT_EQ(drain_all(queue, 258), (std::vector<std::uint64_t>{7}));
  EXPECT_EQ(drain_all(queue, 900), (std::vector<std::uint64_t>{8}));
  EXPECT_EQ(queue.size(), 0u);
}

TEST(CalendarQueue, FarFutureOverflowDeliversAtTheRightTick) {
  CalendarQueue queue;
  // One message well past the calendar window, one near.
  queue.push(5) = make_msg(0, 0);
  queue.push(5000) = make_msg(1, 1);
  EXPECT_TRUE(drain_all(queue, 4).empty());
  std::vector<std::uint64_t> got = drain_all(queue, 5);
  EXPECT_EQ(got, (std::vector<std::uint64_t>{0}));
  EXPECT_TRUE(drain_all(queue, 4999).empty());
  got = drain_all(queue, 5001);
  EXPECT_EQ(got, (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(queue.size(), 0u);
}

TEST(CalendarQueue, OverflowThenCalendarSameTickKeepsSeqOrder) {
  CalendarQueue queue;
  // seq 0 lands at tick 600 while 600 is beyond the window (overflow);
  // after the window slides past 344, seq 1 for the same tick goes into the
  // calendar band. Delivery must still be seq order.
  queue.push(600) = make_msg(0, 0);
  EXPECT_TRUE(drain_all(queue, 400).empty());  // window now covers tick 600
  queue.push(600) = make_msg(1, 1);
  queue.push(599) = make_msg(2, 2);
  EXPECT_EQ(drain_all(queue, 600), (std::vector<std::uint64_t>{2, 0, 1}));
}

TEST(CalendarQueue, ClearDropsEverything) {
  CalendarQueue queue;
  for (std::uint64_t s = 0; s < 50; ++s) {
    queue.push(10 + s % 7) = make_msg(0, s);
    queue.push(900 + s) = make_msg(1, 100 + s);
  }
  EXPECT_EQ(queue.size(), 100u);
  queue.clear();
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_TRUE(drain_all(queue, 5000).empty());
  // Still usable after a clear.
  queue.push(5001) = make_msg(0, 1000);
  EXPECT_EQ(drain_all(queue, 5001), (std::vector<std::uint64_t>{1000}));
}

}  // namespace
}  // namespace wfd::sim
