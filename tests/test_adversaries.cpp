// Adversarial-environment coverage: the paper's model allows unbounded
// relative speeds and arbitrary (finite) stalls. The reduction and the
// dining algorithms must hold up under weighted and pausing schedulers,
// heavy-tailed delays, and combinations thereof. Plus engine edge cases.
#include <gtest/gtest.h>

#include <memory>

#include "detect/properties.hpp"
#include "graph/conflict_graph.hpp"
#include "harness/rig.hpp"
#include "reduce/extraction.hpp"

namespace wfd {
namespace {

using harness::Rig;
using harness::RigOptions;

TEST(Adversaries, ReductionSurvivesUnboundedSpeedRatio) {
  // Watcher runs 50x faster than subject: the fastest witness against the
  // slowest subject is the hardest accuracy case (the witness wants to eat
  // constantly; the hand-off must still throttle it).
  Rig rig(RigOptions{.seed = 71, .n = 2});
  rig.engine.set_scheduler(std::make_unique<sim::WeightedScheduler>(
      std::vector<std::uint64_t>{50, 1}));
  reduce::WaitFreeBoxFactory factory(
      [&rig](sim::ProcessId p) { return rig.detectors[p].get(); });
  auto extraction = reduce::build_full_extraction(rig.hosts, factory, {});
  detect::DetectorHistory history(0xED);
  rig.engine.trace().subscribe(
      [&history](const sim::Event& e) { history.on_event(e); });
  history.set_initial(0, 1, true);
  history.set_initial(1, 0, true);
  rig.engine.init();
  rig.engine.run(400000);
  const auto accuracy = history.eventual_strong_accuracy(rig.engine);
  EXPECT_TRUE(accuracy.holds) << accuracy.detail;
}

TEST(Adversaries, ReductionSurvivesSubjectStall) {
  // The subject's process is frozen for a long window (a finite stall is a
  // legal asynchronous behaviour, NOT a crash): the witness may suspect it
  // meanwhile, but must re-trust after the stall — mistakes stay finite.
  Rig rig(RigOptions{.seed = 72, .n = 2});
  rig.engine.set_scheduler(std::make_unique<sim::PausingScheduler>(
      std::vector<sim::PausingScheduler::Pause>{{1, 5000, 25000}}));
  reduce::WaitFreeBoxFactory factory(
      [&rig](sim::ProcessId p) { return rig.detectors[p].get(); });
  auto extraction = reduce::build_full_extraction(rig.hosts, factory, {});
  detect::DetectorHistory history(0xED);
  rig.engine.trace().subscribe(
      [&history](const sim::Event& e) { history.on_event(e); });
  history.set_initial(0, 1, true);
  history.set_initial(1, 0, true);
  rig.engine.init();
  rig.engine.run(400000);
  const auto accuracy = history.eventual_strong_accuracy(rig.engine);
  EXPECT_TRUE(accuracy.holds) << accuracy.detail;
  EXPECT_FALSE(extraction.detectors[0]->suspects(1));
}

TEST(Adversaries, DiningUnderHeavyTailedDelays) {
  Rig rig(RigOptions{.seed = 73, .n = 4});
  rig.engine.set_delay_model(std::make_unique<sim::GeometricDelay>(0.05, 200));
  auto instance = rig.add_wait_free_dining(10, 1, graph::make_ring(4));
  auto clients = rig.add_clients(instance, dining::ClientConfig{});
  dining::DiningMonitor monitor(rig.engine, instance.config);
  dining::DiningMonitor::attach(rig.engine, monitor);
  rig.engine.init();
  rig.engine.run(200000);
  std::string detail;
  EXPECT_TRUE(monitor.wait_free(rig.engine.now(), 50000, &detail)) << detail;
  EXPECT_GT(monitor.total_meals(), 200u);
}

TEST(Adversaries, TargetedChannelSlowdown) {
  // The adversary slows exactly the subject->watcher direction (pings!)
  // for a long finite window; accuracy must still converge afterwards.
  Rig rig(RigOptions{.seed = 74, .n = 2});
  auto delay = std::make_unique<sim::AdversarialDelay>(
      std::make_unique<sim::UniformDelay>(1, 8));
  delay->slow_channel(1, 0, 0, 30000, 400);
  rig.engine.set_delay_model(std::move(delay));
  reduce::WaitFreeBoxFactory factory(
      [&rig](sim::ProcessId p) { return rig.detectors[p].get(); });
  auto extraction = reduce::build_full_extraction(rig.hosts, factory, {});
  rig.engine.init();
  rig.engine.run(400000);
  EXPECT_FALSE(extraction.detectors[0]->suspects(1));
  EXPECT_FALSE(extraction.detectors[1]->suspects(0));
}

// --- engine edge cases -------------------------------------------------------

class SelfSender final : public sim::Process {
 public:
  void on_message(sim::Context&, const sim::Message&) override { ++received_; }
  void on_step(sim::Context& ctx) override {
    ctx.send(ctx.self(), 3, sim::Payload{1, 0, 0, 0});
  }
  std::uint64_t received() const { return received_; }

 private:
  std::uint64_t received_ = 0;
};

TEST(EngineEdge, SelfSendIsDelivered) {
  sim::Engine engine(sim::EngineConfig{.seed = 75});
  engine.add_process(std::make_unique<SelfSender>());
  engine.init();
  engine.run(500);
  EXPECT_GT(engine.process_as<SelfSender>(0).received(), 100u);
}

class BadSender final : public sim::Process {
 public:
  void on_step(sim::Context& ctx) override {
    ctx.send(99, 0, sim::Payload{});  // no such process
  }
};

TEST(EngineEdge, SendToUnknownProcessThrows) {
  sim::Engine engine(sim::EngineConfig{.seed = 76});
  engine.add_process(std::make_unique<BadSender>());
  engine.init();
  EXPECT_THROW(engine.run(10), std::out_of_range);
}

class Flooder final : public sim::Process {
 public:
  explicit Flooder(int sends) : sends_(sends) {}
  void on_step(sim::Context& ctx) override {
    for (int i = 0; i < sends_; ++i) ctx.send(0, 0, sim::Payload{});
  }

 private:
  int sends_;
};

TEST(EngineEdge, SendBoundEnforcedWhenConfigured) {
  sim::Engine engine(sim::EngineConfig{.seed = 77, .max_sends_per_step = 4});
  engine.add_process(std::make_unique<Flooder>(10));
  engine.init();
  EXPECT_THROW(engine.run(5), std::logic_error);
}

TEST(EngineEdge, SendBoundDisabledByDefault) {
  sim::Engine engine(sim::EngineConfig{.seed = 78});
  engine.add_process(std::make_unique<Flooder>(10));
  engine.init();
  EXPECT_NO_THROW(engine.run(50));
}

TEST(EngineEdge, CrashAtTimeZeroNeverSteps) {
  sim::Engine engine(sim::EngineConfig{.seed = 79});
  engine.add_process(std::make_unique<SelfSender>());
  engine.add_process(std::make_unique<SelfSender>());
  engine.schedule_crash(0, 0);
  engine.init();
  engine.run(1000);
  EXPECT_EQ(engine.process_as<SelfSender>(0).received(), 0u);
  EXPECT_GT(engine.process_as<SelfSender>(1).received(), 100u);
}

}  // namespace
}  // namespace wfd
