// Multi-cell WSN tests: layout construction, coverage accounting over
// non-trivial conflict graphs, cross-cell coverage, crash tolerance.
#include <gtest/gtest.h>

#include <memory>

#include "dining/instance.hpp"
#include "harness/rig.hpp"
#include "wsn/duty_cycle.hpp"
#include "wsn/network.hpp"

namespace wfd::wsn {
namespace {

using harness::Rig;
using harness::RigOptions;

TEST(NetworkLayout, RingStructure) {
  const NetworkLayout layout = make_ring_network(4, 2);
  EXPECT_EQ(layout.sensor_count(), 8u);
  // Sensor 0's home is cell 0, also covering cell 1.
  ASSERT_EQ(layout.covers[0].size(), 2u);
  EXPECT_EQ(layout.covers[0][0], 0u);
  EXPECT_EQ(layout.covers[0][1], 1u);
  // Home-mates conflict.
  EXPECT_TRUE(layout.conflicts.has_edge(0, 1));
  // Overlapping reach conflicts: sensor 0 (cells 0,1) vs sensor 2 (cells 1,2).
  EXPECT_TRUE(layout.conflicts.has_edge(0, 2));
  // Opposite sides of the ring do not conflict: sensor 0 (0,1) vs 4 (2,3).
  EXPECT_FALSE(layout.conflicts.has_edge(0, 4));
  EXPECT_TRUE(layout.conflicts.connected());
}

TEST(NetworkLayout, SingleCellDegeneratesToClique) {
  const NetworkLayout layout = make_ring_network(1, 3);
  EXPECT_EQ(layout.sensor_count(), 3u);
  EXPECT_EQ(layout.conflicts.edge_count(), 3u);  // triangle
}

struct NetRig {
  Rig rig;
  NetworkLayout layout;
  dining::BuiltInstance instance;
  std::vector<std::shared_ptr<SensorNode>> sensors;
  NetworkMonitor monitor;

  NetRig(std::uint32_t cells, std::uint32_t redundancy, std::uint64_t seed,
         std::uint64_t battery)
      : rig(RigOptions{.seed = seed,
                       .n = cells * redundancy,
                       .detector_lag = 25}),
        layout(make_ring_network(cells, redundancy)),
        monitor(3, layout, [this] {
          std::vector<sim::ProcessId> m;
          for (sim::ProcessId p = 0; p < rig.hosts.size(); ++p) m.push_back(p);
          return m;
        }()) {
    instance = rig.add_wait_free_dining(10, 3, layout.conflicts);
    for (std::uint32_t s = 0; s < layout.sensor_count(); ++s) {
      auto sensor = std::make_shared<SensorNode>(
          *instance.diners[s],
          SensorConfig{.battery = battery, .duty_length = 30,
                       .rest_length = 4});
      rig.hosts[s]->add_component(sensor, {});
      sensors.push_back(sensor);
    }
    rig.engine.trace().subscribe(
        [this](const sim::Event& e) { monitor.on_event(e); });
  }
};

TEST(WsnNetwork, AllCellsStayMostlyCovered) {
  NetRig net(4, 2, 21, /*battery=*/1000000);
  net.rig.engine.init();
  net.rig.engine.run(120000);
  net.monitor.finalize(net.rig.engine.now());
  // Strict exclusion over overlapping regions trades coverage for zero
  // redundancy: while a sensor covering cells {0,1} is on duty, every
  // sensor overlapping either cell must wait, so per-cell coverage sits
  // well below 1 even with everyone alive. (Relaxing this is exactly the
  // <>WX story: tolerate transient redundancy, gain liveness.)
  EXPECT_GT(net.monitor.worst_cell_coverage(), 0.2)
      << "every cell sees duty regularly";
  for (std::uint32_t cell = 0; cell < 4; ++cell) {
    EXPECT_LT(net.monitor.redundancy_fraction(cell), 0.05)
        << "converged scheduler avoids redundant duty in cell " << cell;
  }
}

TEST(WsnNetwork, NeighborsCoverForACrashedCell) {
  // Kill both home sensors of cell 1; the cell stays covered by cell 0's
  // sensors (whose reach includes cell 1) — coverage through overlap.
  NetRig net(4, 2, 22, /*battery=*/1000000);
  net.rig.engine.schedule_crash(2, 4000);  // home sensors of cell 1
  net.rig.engine.schedule_crash(3, 4000);
  net.rig.engine.init();
  net.rig.engine.run(160000);
  net.monitor.finalize(net.rig.engine.now());
  EXPECT_GT(net.monitor.cell_coverage(1), 0.15)
      << "overlapping reach must keep the orphaned cell alive";
  EXPECT_GT(net.monitor.network_lifetime(), 100000u);
}

TEST(WsnNetwork, BatteriesDrainSequentiallyNotInParallel) {
  NetRig net(2, 2, 23, /*battery=*/2000);
  net.rig.engine.init();
  net.rig.engine.run(80000);
  net.monitor.finalize(net.rig.engine.now());
  // Four sensors, ~2000 duty-ticks each; duty is shared, so the network
  // outlives a single battery several times over.
  EXPECT_GT(net.monitor.network_lifetime(), 4000u);
}

}  // namespace
}  // namespace wfd::wsn
