// Core tests for the paper's reduction (Alg. 1 + Alg. 2): the detector
// extracted from a black-box WF-<>WX dining service satisfies strong
// completeness and eventual strong accuracy — against the real wait-free
// dining algorithm, against adversarial scripted boxes (mistake prefixes,
// unfair grant policies, [12]-style fork semantics), and under crashes.
#include <gtest/gtest.h>

#include <memory>

#include "detect/properties.hpp"
#include "reduce/ablation.hpp"
#include "reduce/extraction.hpp"
#include "reduce/gkk.hpp"
#include "harness/rig.hpp"

namespace wfd::reduce {
namespace {

using detect::DetectorHistory;
using detect::Verdict;
using harness::Rig;
using harness::RigOptions;

constexpr std::uint64_t kExtractTag = 0xED;

/// Register all ordered pairs of an extraction with a history monitor
/// (initial output of Alg. 1 is "suspect").
void register_pairs(DetectorHistory& history, const Extraction& extraction) {
  for (const auto& pair : extraction.pairs) {
    history.set_initial(pair.watcher, pair.subject, true);
  }
}

TEST(Reduction, ExtractsEventuallyPerfectFromRealBox_NoCrashes) {
  Rig rig(RigOptions{.seed = 21, .n = 3, .detector_lag = 25});
  WaitFreeBoxFactory factory(
      [&rig](sim::ProcessId p) { return rig.detectors[p].get(); });
  auto extraction =
      build_full_extraction(rig.hosts, factory, ExtractionOptions{});
  DetectorHistory history(kExtractTag);
  rig.engine.trace().subscribe(
      [&history](const sim::Event& e) { history.on_event(e); });
  register_pairs(history, extraction);
  rig.engine.init();
  rig.engine.run(150000);
  const Verdict accuracy = history.eventual_strong_accuracy(rig.engine);
  EXPECT_TRUE(accuracy.holds) << accuracy.detail;
  // The run converged well before its end, not at the buzzer.
  EXPECT_LT(accuracy.convergence, rig.engine.now() - 20000);
}

TEST(Reduction, StrongCompletenessOnRealBox) {
  Rig rig(RigOptions{.seed = 22, .n = 3, .detector_lag = 25});
  WaitFreeBoxFactory factory(
      [&rig](sim::ProcessId p) { return rig.detectors[p].get(); });
  auto extraction =
      build_full_extraction(rig.hosts, factory, ExtractionOptions{});
  DetectorHistory history(kExtractTag);
  rig.engine.trace().subscribe(
      [&history](const sim::Event& e) { history.on_event(e); });
  register_pairs(history, extraction);
  rig.engine.schedule_crash(2, 5000);
  rig.engine.init();
  rig.engine.run(200000);
  const Verdict completeness = history.strong_completeness(rig.engine);
  EXPECT_TRUE(completeness.holds) << completeness.detail;
  // Correct pairs still converge to trust.
  const Verdict accuracy = history.eventual_strong_accuracy(rig.engine);
  EXPECT_TRUE(accuracy.holds) << accuracy.detail;
  // The witnesses at 0 and 1 suspect 2 right now, permanently.
  EXPECT_TRUE(extraction.detectors[0]->suspects(2));
  EXPECT_TRUE(extraction.detectors[1]->suspects(2));
  EXPECT_FALSE(extraction.detectors[0]->suspects(1));
}

TEST(Reduction, BoxInternalMistakesDoNotBreakExtraction) {
  // The box's internal <>P lies for a while (forcing real scheduling
  // mistakes); the extracted detector must still converge.
  RigOptions options{.seed = 23, .n = 2, .detector_lag = 25};
  options.mistakes = {{0, 1, 200, 2000}, {1, 0, 400, 2500}};
  Rig rig(options);
  WaitFreeBoxFactory factory(
      [&rig](sim::ProcessId p) { return rig.detectors[p].get(); });
  auto extraction =
      build_full_extraction(rig.hosts, factory, ExtractionOptions{});
  DetectorHistory history(kExtractTag);
  rig.engine.trace().subscribe(
      [&history](const sim::Event& e) { history.on_event(e); });
  register_pairs(history, extraction);
  rig.engine.init();
  rig.engine.run(150000);
  const Verdict accuracy = history.eventual_strong_accuracy(rig.engine);
  EXPECT_TRUE(accuracy.holds) << accuracy.detail;
}

TEST(Reduction, ScriptedBoxWithMistakePrefix) {
  Rig rig(RigOptions{.seed = 24, .n = 2});
  ScriptedBoxFactory factory(rig.engine, /*exclusive_from=*/3000,
                             dining::BoxSemantics::kLockout);
  auto extraction =
      build_full_extraction(rig.hosts, factory, ExtractionOptions{});
  DetectorHistory history(kExtractTag);
  rig.engine.trace().subscribe(
      [&history](const sim::Event& e) { history.on_event(e); });
  register_pairs(history, extraction);
  rig.engine.init();
  rig.engine.run(150000);
  const Verdict accuracy = history.eventual_strong_accuracy(rig.engine);
  EXPECT_TRUE(accuracy.holds) << accuracy.detail;
}

TEST(Reduction, ScriptedForkBasedBox) {
  // [12]-style semantics: mistake-prefix eaters hold no lock.
  Rig rig(RigOptions{.seed = 25, .n = 2});
  ScriptedBoxFactory factory(rig.engine, /*exclusive_from=*/2500,
                             dining::BoxSemantics::kForkBased);
  auto extraction =
      build_full_extraction(rig.hosts, factory, ExtractionOptions{});
  DetectorHistory history(kExtractTag);
  rig.engine.trace().subscribe(
      [&history](const sim::Event& e) { history.on_event(e); });
  register_pairs(history, extraction);
  rig.engine.init();
  rig.engine.run(150000);
  const Verdict accuracy = history.eventual_strong_accuracy(rig.engine);
  EXPECT_TRUE(accuracy.holds) << accuracy.detail;
}

TEST(Reduction, SurvivesUnfairBox) {
  // A wait-free box that serves the witness in bursts of 3. The hand-off
  // must still throttle the witness into trusting the correct subject.
  Rig rig(RigOptions{.seed = 26, .n = 2});
  ScriptedBoxFactory factory(rig.engine, /*exclusive_from=*/500,
                             dining::BoxSemantics::kLockout,
                             /*member0_burst=*/3);
  auto extraction =
      build_full_extraction(rig.hosts, factory, ExtractionOptions{});
  DetectorHistory history(kExtractTag);
  rig.engine.trace().subscribe(
      [&history](const sim::Event& e) { history.on_event(e); });
  register_pairs(history, extraction);
  rig.engine.init();
  rig.engine.run(150000);
  const Verdict accuracy = history.eventual_strong_accuracy(rig.engine);
  EXPECT_TRUE(accuracy.holds) << accuracy.detail;
}

TEST(Reduction, CompletenessOnScriptedBox) {
  Rig rig(RigOptions{.seed = 27, .n = 2});
  ScriptedBoxFactory factory(rig.engine, /*exclusive_from=*/1000,
                             dining::BoxSemantics::kLockout);
  auto extraction =
      build_full_extraction(rig.hosts, factory, ExtractionOptions{});
  DetectorHistory history(kExtractTag);
  rig.engine.trace().subscribe(
      [&history](const sim::Event& e) { history.on_event(e); });
  register_pairs(history, extraction);
  rig.engine.schedule_crash(1, 4000);
  rig.engine.init();
  rig.engine.run(150000);
  const Verdict completeness = history.strong_completeness(rig.engine);
  EXPECT_TRUE(completeness.holds) << completeness.detail;
  EXPECT_TRUE(extraction.detectors[0]->suspects(1));
}

TEST(Reduction, SubjectCrashMidProtocolStillDetected) {
  // Crash the subject early, while the ping/ack handshake may be mid-
  // flight; the witness must converge to permanent suspicion regardless.
  for (sim::Time crash_at : {100u, 500u, 1500u, 2500u}) {
    Rig rig(RigOptions{.seed = 28 + crash_at, .n = 2, .detector_lag = 25});
    WaitFreeBoxFactory factory(
        [&rig](sim::ProcessId p) { return rig.detectors[p].get(); });
    auto extraction =
        build_full_extraction(rig.hosts, factory, ExtractionOptions{});
    rig.engine.schedule_crash(1, crash_at);
    rig.engine.init();
    rig.engine.run(120000);
    EXPECT_TRUE(extraction.detectors[0]->suspects(1))
        << "crash_at=" << crash_at;
    // and it stays suspected
    rig.engine.run(20000);
    EXPECT_TRUE(extraction.detectors[0]->suspects(1));
  }
}

TEST(Reduction, WitnessCrashDoesNotWedgeSubjectHost) {
  // If the watcher dies, the subject may stall inside an eating session
  // (discussed in Section 8: behaviour of unobserved subjects is
  // immaterial). The subject's *process* must keep running its other
  // protocol roles: here, its own watcher role towards p.
  Rig rig(RigOptions{.seed = 30, .n = 2, .detector_lag = 25});
  WaitFreeBoxFactory factory(
      [&rig](sim::ProcessId p) { return rig.detectors[p].get(); });
  auto extraction =
      build_full_extraction(rig.hosts, factory, ExtractionOptions{});
  rig.engine.schedule_crash(0, 2000);
  rig.engine.init();
  rig.engine.run(120000);
  // Process 1 (correct) monitors 0 (crashed): must converge to suspicion.
  EXPECT_TRUE(extraction.detectors[1]->suspects(0));
}

TEST(Reduction, PingsAndMealsKeepFlowing) {
  Rig rig(RigOptions{.seed = 31, .n = 2});
  WaitFreeBoxFactory factory(
      [&rig](sim::ProcessId p) { return rig.detectors[p].get(); });
  auto extraction =
      build_full_extraction(rig.hosts, factory, ExtractionOptions{});
  rig.engine.init();
  rig.engine.run(60000);
  const auto* pair = extraction.find(0, 1);
  ASSERT_NE(pair, nullptr);
  EXPECT_GT(pair->witness->meals(), 50u);
  EXPECT_GT(pair->subject_threads->meals(), 50u);
  EXPECT_GT(pair->subject_threads->pings_sent(), 50u);
  // Liveness keeps up on both instances (witness alternates).
  rig.engine.run(20000);
  EXPECT_GT(pair->witness->meals(), 60u);
}

TEST(Reduction, SuspicionFlipsAreFiniteOnCorrectPair) {
  Rig rig(RigOptions{.seed = 32, .n = 2});
  WaitFreeBoxFactory factory(
      [&rig](sim::ProcessId p) { return rig.detectors[p].get(); });
  auto extraction =
      build_full_extraction(rig.hosts, factory, ExtractionOptions{});
  rig.engine.init();
  rig.engine.run(100000);
  const auto* pair = extraction.find(0, 1);
  ASSERT_NE(pair, nullptr);
  const std::uint64_t flips = pair->witness->suspicion_flips();
  rig.engine.run(100000);
  EXPECT_EQ(pair->witness->suspicion_flips(), flips)
      << "suspicion flips continued in the converged suffix";
  EXPECT_FALSE(pair->witness->suspects_subject());
}

// --- Section 3: the GKK contention-manager construction -------------------

TEST(Gkk, WorksOnLockoutBox) {
  // On a box whose exclusive suffix locks the witness out behind the
  // never-exiting subject, the GKK construction happens to satisfy
  // eventual accuracy: p ends up permanently trusting q.
  Rig rig(RigOptions{.seed = 33, .n = 2});
  ScriptedBoxFactory factory(rig.engine, /*exclusive_from=*/1500,
                             dining::BoxSemantics::kLockout);
  GkkPair pair = build_gkk_pair(*rig.hosts[0], *rig.hosts[1], 0, 1, factory,
                                2000, 0x42, kExtractTag);
  rig.engine.init();
  rig.engine.run(100000);
  EXPECT_FALSE(pair.witness->suspects_subject());
  const std::uint64_t episodes = pair.witness->suspicion_episodes();
  rig.engine.run(50000);
  EXPECT_EQ(pair.witness->suspicion_episodes(), episodes);
}

TEST(Gkk, FailsOnForkBasedBox) {
  // The paper's counterexample: against a [12]-style box, the correct,
  // never-exiting subject q holds no lock, so the witness keeps eating —
  // and keeps suspecting correct q — forever. Eventual strong accuracy is
  // violated: suspicion episodes grow without bound.
  Rig rig(RigOptions{.seed = 34, .n = 2});
  ScriptedBoxFactory factory(rig.engine, /*exclusive_from=*/1500,
                             dining::BoxSemantics::kForkBased);
  GkkPair pair = build_gkk_pair(*rig.hosts[0], *rig.hosts[1], 0, 1, factory,
                                2000, 0x42, kExtractTag);
  rig.engine.init();
  rig.engine.run(60000);
  const std::uint64_t episodes_mid = pair.witness->suspicion_episodes();
  rig.engine.run(60000);
  const std::uint64_t episodes_end = pair.witness->suspicion_episodes();
  EXPECT_GT(episodes_mid, 10u);
  EXPECT_GT(episodes_end, episodes_mid + 10)
      << "suspicions of the correct subject must keep recurring";
}

TEST(Gkk, OurReductionSurvivesTheSameAdversary) {
  // Alg. 1/2 on the very box that defeats GKK: subjects exit via the
  // hand-off, so the extraction converges.
  Rig rig(RigOptions{.seed = 35, .n = 2});
  ScriptedBoxFactory factory(rig.engine, /*exclusive_from=*/1500,
                             dining::BoxSemantics::kForkBased);
  auto extraction =
      build_full_extraction(rig.hosts, factory, ExtractionOptions{});
  DetectorHistory history(kExtractTag);
  rig.engine.trace().subscribe(
      [&history](const sim::Event& e) { history.on_event(e); });
  register_pairs(history, extraction);
  rig.engine.init();
  rig.engine.run(150000);
  const Verdict accuracy = history.eventual_strong_accuracy(rig.engine);
  EXPECT_TRUE(accuracy.holds) << accuracy.detail;
}

// --- E9: single-instance ablation ------------------------------------------

TEST(Ablation, SingleInstanceFailsOnUnfairBox) {
  Rig rig(RigOptions{.seed = 36, .n = 2});
  ScriptedBoxFactory factory(rig.engine, /*exclusive_from=*/500,
                             dining::BoxSemantics::kLockout,
                             /*member0_burst=*/2);
  SingleInstancePair pair = build_single_instance_pair(
      *rig.hosts[0], *rig.hosts[1], 0, 1, factory, 2000, 0x42, kExtractTag);
  rig.engine.init();
  rig.engine.run(60000);
  const std::uint64_t episodes_mid = pair.witness->suspicion_episodes();
  rig.engine.run(60000);
  EXPECT_GT(pair.witness->suspicion_episodes(), episodes_mid + 10)
      << "without the hand-off, wrongful suspicions recur forever";
}

TEST(Ablation, SingleInstanceFragileEvenOnFairBox) {
  // Even with FIFO grants, asynchrony alone defeats the single-instance
  // extraction: the witness can exit, re-request and be granted again
  // before the subject's (in-flight) request reaches the manager, so
  // wrongful suspicion episodes keep trickling in forever. The hand-off of
  // Alg. 1/2 exists precisely to close this window.
  Rig rig(RigOptions{.seed = 37, .n = 2});
  ScriptedBoxFactory factory(rig.engine, /*exclusive_from=*/500,
                             dining::BoxSemantics::kLockout);
  SingleInstancePair pair = build_single_instance_pair(
      *rig.hosts[0], *rig.hosts[1], 0, 1, factory, 2000, 0x42, kExtractTag);
  rig.engine.init();
  rig.engine.run(100000);
  const std::uint64_t episodes = pair.witness->suspicion_episodes();
  EXPECT_GT(episodes, 0u);
  rig.engine.run(50000);
  EXPECT_GT(pair.witness->suspicion_episodes(), episodes)
      << "expected fresh wrongful-suspicion episodes in the late suffix";
}

TEST(Ablation, TwoInstanceSurvivesSameUnfairBox) {
  Rig rig(RigOptions{.seed = 38, .n = 2});
  ScriptedBoxFactory factory(rig.engine, /*exclusive_from=*/500,
                             dining::BoxSemantics::kLockout,
                             /*member0_burst=*/2);
  auto extraction =
      build_full_extraction(rig.hosts, factory, ExtractionOptions{});
  DetectorHistory history(kExtractTag);
  rig.engine.trace().subscribe(
      [&history](const sim::Event& e) { history.on_event(e); });
  register_pairs(history, extraction);
  rig.engine.init();
  rig.engine.run(150000);
  const Verdict accuracy = history.eventual_strong_accuracy(rig.engine);
  EXPECT_TRUE(accuracy.holds) << accuracy.detail;
}

}  // namespace
}  // namespace wfd::reduce
