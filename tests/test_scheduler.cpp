// Scheduler tests: fairness (every live process steps infinitely often),
// weighting, pausing windows, and crash handling.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "sim/engine.hpp"

namespace wfd::sim {
namespace {

class StepCounter final : public Process {
 public:
  void on_step(Context&) override { ++steps_; }
  std::uint64_t steps() const { return steps_; }

 private:
  std::uint64_t steps_ = 0;
};

std::vector<std::uint64_t> run_and_count(std::unique_ptr<Scheduler> scheduler,
                                         std::size_t n, std::uint64_t steps,
                                         std::vector<std::pair<ProcessId, Time>>
                                             crashes = {}) {
  Engine engine({.seed = 77});
  for (std::size_t i = 0; i < n; ++i) {
    engine.add_process(std::make_unique<StepCounter>());
  }
  engine.set_scheduler(std::move(scheduler));
  for (auto [pid, at] : crashes) engine.schedule_crash(pid, at);
  engine.init();
  engine.run(steps);
  std::vector<std::uint64_t> counts;
  for (ProcessId pid = 0; pid < n; ++pid) {
    counts.push_back(engine.process_as<StepCounter>(pid).steps());
  }
  return counts;
}

TEST(Scheduler, RoundRobinIsExactlyFair) {
  auto counts = run_and_count(std::make_unique<RoundRobinScheduler>(), 4, 4000);
  for (auto c : counts) EXPECT_EQ(c, 1000u);
}

TEST(Scheduler, RoundRobinSkipsCrashed) {
  auto counts = run_and_count(std::make_unique<RoundRobinScheduler>(), 3, 3000,
                              {{1, 10}});
  EXPECT_LT(counts[1], 10u);
  EXPECT_GT(counts[0], 1400u);
  EXPECT_GT(counts[2], 1400u);
}

TEST(Scheduler, RandomIsApproximatelyFair) {
  auto counts = run_and_count(std::make_unique<RandomScheduler>(), 5, 50000);
  for (auto c : counts) {
    EXPECT_GT(c, 8000u);
    EXPECT_LT(c, 12000u);
  }
}

TEST(Scheduler, RandomNeverSchedulesCrashed) {
  auto counts = run_and_count(std::make_unique<RandomScheduler>(), 3, 30000,
                              {{0, 100}});
  EXPECT_LT(counts[0], 100u);
  EXPECT_GT(counts[1], 10000u);
  EXPECT_GT(counts[2], 10000u);
}

TEST(Scheduler, WeightedBiasesSpeeds) {
  auto counts = run_and_count(
      std::make_unique<WeightedScheduler>(std::vector<std::uint64_t>{1, 9}), 2,
      50000);
  const double ratio =
      static_cast<double>(counts[1]) / static_cast<double>(counts[0]);
  EXPECT_GT(ratio, 6.0);
  EXPECT_LT(ratio, 13.0);
}

TEST(Scheduler, WeightedStillFairToSlowProcess) {
  auto counts = run_and_count(
      std::make_unique<WeightedScheduler>(std::vector<std::uint64_t>{1, 1000}),
      2, 100000);
  EXPECT_GT(counts[0], 0u) << "slow processes must still step";
}

TEST(Scheduler, RoundRobinCoversEveryLiveProcessWithinOneRoundOfACrash) {
  // Regression: the pre-overhaul round-robin rescanned `live` with a wrap
  // heuristic that could starve a live process for many rounds right after a
  // crash shrank the list. The cursor version must schedule every live
  // process exactly once in ANY window of live-count consecutive steps —
  // including the windows straddling and following the crash.
  constexpr std::uint32_t kN = 8;
  constexpr Time kCrashAt = 500;
  Engine engine({.seed = 9});
  for (std::uint32_t i = 0; i < kN; ++i) {
    engine.add_process(std::make_unique<StepCounter>());
  }
  engine.set_scheduler(std::make_unique<RoundRobinScheduler>());
  engine.schedule_crash(3, kCrashAt);

  std::vector<ProcessId> stepped_after_crash;
  engine.trace().subscribe([&](const Event& e) {
    if (e.kind == EventKind::kStep && e.time >= kCrashAt) {
      stepped_after_crash.push_back(e.pid);
    }
  });
  engine.init();
  engine.run(1000);

  ASSERT_GE(stepped_after_crash.size(), 3 * (kN - 1));
  const std::vector<ProcessId> live{0, 1, 2, 4, 5, 6, 7};
  for (std::size_t start = 0; start + (kN - 1) <= 3 * (kN - 1); ++start) {
    std::vector<ProcessId> window(
        stepped_after_crash.begin() + static_cast<std::ptrdiff_t>(start),
        stepped_after_crash.begin() + static_cast<std::ptrdiff_t>(start) +
            (kN - 1));
    std::sort(window.begin(), window.end());
    EXPECT_EQ(window, live) << "window at offset " << start
                            << " did not cover every live process";
  }
}

TEST(Scheduler, PausingStallsWindowOnly) {
  std::vector<PausingScheduler::Pause> pauses{{0, 100, 2000}};
  Engine engine({.seed = 5});
  engine.add_process(std::make_unique<StepCounter>());
  engine.add_process(std::make_unique<StepCounter>());
  engine.set_scheduler(std::make_unique<PausingScheduler>(pauses));
  engine.init();
  engine.run(99);
  const auto before = engine.process_as<StepCounter>(0).steps();
  engine.run(1800);  // inside the pause window
  EXPECT_EQ(engine.process_as<StepCounter>(0).steps(), before);
  engine.run(4000);  // past it
  EXPECT_GT(engine.process_as<StepCounter>(0).steps(), before);
}

}  // namespace
}  // namespace wfd::sim
