// Mutation tests for the property oracles: deliberately inject each failure
// the monitors exist to catch — a post-convergence exclusion violation, a
// starved diner, a never-converging detector — and assert that
// dining::DiningMonitor and detect::DetectorHistory actually flag it.
// Every mutation runs next to a de-mutated control on otherwise identical
// wiring, so a monitor that went silent (or one that cries wolf) fails
// here rather than silently grading fuzz campaigns wrong.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "detect/oracle.hpp"
#include "detect/properties.hpp"
#include "dining/client.hpp"
#include "dining/monitors.hpp"
#include "dining/scripted_box.hpp"
#include "graph/conflict_graph.hpp"
#include "sim/engine.hpp"

namespace wfd {
namespace {

constexpr sim::Port kPort = 10;
constexpr std::uint64_t kTag = 0x42;

/// A scripted-box run graded by a DiningMonitor: n diners on a clique,
/// round-robin scheduling, fixed small delay, so outcomes are stable.
struct ScriptedRun {
  sim::Engine engine;
  std::vector<sim::ComponentHost*> hosts;
  dining::BuiltScriptedBox box;
  std::vector<std::shared_ptr<dining::DinerClient>> clients;
  std::unique_ptr<dining::DiningMonitor> monitor;

  ScriptedRun(std::uint32_t n, sim::Time exclusive_from,
              dining::BoxSemantics semantics, std::int32_t never_exit_member)
      : engine(sim::EngineConfig{.seed = 1}) {
    for (sim::ProcessId p = 0; p < n; ++p) {
      auto host = std::make_unique<sim::ComponentHost>();
      hosts.push_back(host.get());
      engine.add_process(std::move(host));
    }
    engine.set_delay_model(std::make_unique<sim::FixedDelay>(2));
    engine.set_scheduler(std::make_unique<sim::RoundRobinScheduler>());

    dining::ScriptedBoxConfig config;
    config.port = kPort;
    config.tag = kTag;
    for (sim::ProcessId p = 0; p < n; ++p) config.members.push_back(p);
    config.exclusive_from = exclusive_from;
    config.semantics = semantics;
    box = dining::build_scripted_box(engine, hosts, config);
    for (std::uint32_t i = 0; i < n; ++i) {
      dining::ClientConfig client_config;
      client_config.never_exit =
          never_exit_member == static_cast<std::int32_t>(i);
      auto client = std::make_shared<dining::DinerClient>(*box.diners[i],
                                                          client_config);
      hosts[i]->add_component(client, {});
      clients.push_back(std::move(client));
    }

    dining::DiningInstanceConfig monitor_config;
    monitor_config.port = kPort;
    monitor_config.tag = kTag;
    monitor_config.members = config.members;
    monitor_config.graph = graph::make_clique(n);
    monitor = std::make_unique<dining::DiningMonitor>(engine, monitor_config);
    dining::DiningMonitor::attach(engine, *monitor);

    engine.init();
  }
};

TEST(OracleMutation, MonitorFlagsInjectedExclusionViolations) {
  // Mutant: fork-based box with a never-exiting diner granted during the
  // mistake prefix. Prefix grants hold no lock under kForkBased, so serial
  // grants keep overlapping the squatter forever — ◊WX is genuinely broken,
  // and the monitor must keep counting violations long after the prefix.
  ScriptedRun mutant(2, /*exclusive_from=*/500, dining::BoxSemantics::kForkBased,
                     /*never_exit_member=*/1);
  mutant.engine.run(20000);
  EXPECT_GT(mutant.monitor->violations_since(10000), 0u);
  EXPECT_GT(mutant.monitor->last_violation(), 10000u);
  EXPECT_FALSE(mutant.monitor->perpetual_exclusion());

  // Control: same box without the squatter converges — the only mistakes
  // are inside the prefix, none after a generous deadline.
  ScriptedRun control(2, /*exclusive_from=*/500, dining::BoxSemantics::kForkBased,
                      /*never_exit_member=*/-1);
  control.engine.run(20000);
  EXPECT_EQ(control.monitor->violations_since(5000), 0u);
  EXPECT_GT(control.monitor->total_meals(), 0u);
}

TEST(OracleMutation, MonitorFlagsStarvedDiner) {
  // Mutant: lockout box, converged from t=0, and member 1 never exits its
  // first meal — member 0 goes hungry and stays hungry forever. The
  // wait-freedom oracle must reject the run and name the starving diner.
  ScriptedRun mutant(2, /*exclusive_from=*/0, dining::BoxSemantics::kLockout,
                     /*never_exit_member=*/1);
  mutant.engine.run(20000);
  std::string detail;
  EXPECT_FALSE(mutant.monitor->wait_free(mutant.engine.now(), 5000, &detail));
  EXPECT_FALSE(detail.empty());

  // Control: everyone exits; the same bound passes and meals accumulate.
  ScriptedRun control(2, /*exclusive_from=*/0, dining::BoxSemantics::kLockout,
                      /*never_exit_member=*/-1);
  control.engine.run(20000);
  detail.clear();
  EXPECT_TRUE(control.monitor->wait_free(control.engine.now(), 5000, &detail))
      << detail;
  EXPECT_GT(control.monitor->total_meals(), 10u);
}

/// An OracleEventuallyPerfect pair graded by a DetectorHistory.
struct DetectorRun {
  sim::Engine engine;
  std::vector<sim::ComponentHost*> hosts;
  std::vector<std::shared_ptr<detect::OracleEventuallyPerfect>> oracles;
  detect::DetectorHistory history{0xFD};

  explicit DetectorRun(const std::vector<detect::MistakeWindow>& mistakes)
      : engine(sim::EngineConfig{.seed = 1}) {
    constexpr std::uint32_t kN = 2;
    for (sim::ProcessId p = 0; p < kN; ++p) {
      auto host = std::make_unique<sim::ComponentHost>();
      hosts.push_back(host.get());
      engine.add_process(std::move(host));
    }
    engine.set_delay_model(std::make_unique<sim::FixedDelay>(1));
    engine.set_scheduler(std::make_unique<sim::RoundRobinScheduler>());
    for (sim::ProcessId p = 0; p < kN; ++p) {
      auto oracle = std::make_shared<detect::OracleEventuallyPerfect>(
          engine, p, kN, /*detection_lag=*/10, mistakes, /*tag=*/0xFD);
      oracles.push_back(oracle);
      hosts[p]->add_component(oracle, {});
    }
    engine.trace().subscribe_kinds(
        sim::kind_mask(sim::EventKind::kDetectorChange),
        [this](const sim::Event& e) { history.on_event(e); });
    engine.init();
  }
};

TEST(OracleMutation, HistoryFlagsNeverConvergingDetector) {
  // Mutant: a mistake window that outlasts the whole run — watcher 0 keeps
  // wrongfully suspecting live subject 1 forever, so eventual strong
  // accuracy must NOT hold on the observed run.
  DetectorRun mutant({{/*watcher=*/0, /*subject=*/1, /*from=*/0,
                       /*until=*/1000000}});
  mutant.engine.run(20000);
  const detect::Verdict accuracy =
      mutant.history.eventual_strong_accuracy(mutant.engine);
  EXPECT_FALSE(accuracy.holds);
  EXPECT_FALSE(accuracy.detail.empty());
  EXPECT_TRUE(mutant.history.currently_suspects(0, 1));

  // Control: the same window closed at t=3000 converges; accuracy holds and
  // the reported convergence point sits inside the window + lag.
  DetectorRun control({{0, 1, 0, 3000}});
  control.engine.run(20000);
  const detect::Verdict converged =
      control.history.eventual_strong_accuracy(control.engine);
  EXPECT_TRUE(converged.holds) << converged.detail;
  EXPECT_FALSE(control.history.currently_suspects(0, 1));
  EXPECT_GT(control.history.suspicion_episodes(0, 1), 0u);
  EXPECT_EQ(control.history.suspicion_episodes_since(0, 1, 4000), 0u);
}

TEST(OracleMutation, HistoryFlagsMissedCrash) {
  // Completeness direction: crash subject 1 and let the detector find it —
  // then check the verdict actually depends on the observed suspicion by
  // grading a pair the detector never reports on (a deaf watcher).
  DetectorRun run({});
  run.engine.schedule_crash(1, 5000);
  run.engine.run(20000);
  const detect::Verdict completeness = run.history.strong_completeness(run.engine);
  EXPECT_TRUE(completeness.holds) << completeness.detail;
  EXPECT_TRUE(run.history.currently_suspects(0, 1));

  // Mutant: a history whose registered pair saw no suspicion of the crashed
  // subject (simulating a detector that missed the crash). Completeness
  // must fail for it.
  detect::DetectorHistory deaf(0xAB);  // no events carry this tag
  deaf.set_initial(0, 1, false);
  const detect::Verdict missed = deaf.strong_completeness(run.engine);
  EXPECT_FALSE(missed.holds);
  EXPECT_FALSE(missed.detail.empty());
}

}  // namespace
}  // namespace wfd
