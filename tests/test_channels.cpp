// Channel semantics tests: reliability, non-FIFO reordering, delay model
// bounds, partial synchrony (GST/delta), adversarial overrides.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/engine.hpp"

namespace wfd::sim {
namespace {

/// Sends `total` sequenced messages, one per step, then idles.
class Sender final : public Process {
 public:
  Sender(ProcessId peer, std::uint64_t total) : peer_(peer), total_(total) {}
  void on_step(Context& ctx) override {
    if (sent_ < total_) {
      ctx.send(peer_, 0, Payload{0, ++sent_, ctx.now(), 0});
    }
  }
  std::uint64_t sent() const { return sent_; }

 private:
  ProcessId peer_;
  std::uint64_t total_;
  std::uint64_t sent_ = 0;
};

/// Records arrival order and per-message transit times.
class Receiver final : public Process {
 public:
  void on_message(Context& ctx, const Message& msg) override {
    order_.push_back(msg.payload.a);
    transit_.push_back(ctx.now() - msg.sent_at);
  }
  const std::vector<std::uint64_t>& order() const { return order_; }
  const std::vector<Time>& transit() const { return transit_; }

 private:
  std::vector<std::uint64_t> order_;
  std::vector<Time> transit_;
};

struct Rig {
  Engine engine;
  Sender* sender = nullptr;
  Receiver* receiver = nullptr;

  Rig(std::uint64_t seed, std::uint64_t total, std::unique_ptr<DelayModel> delay)
      : engine({.seed = seed}) {
    auto s = std::make_unique<Sender>(1, total);
    auto r = std::make_unique<Receiver>();
    sender = s.get();
    receiver = r.get();
    engine.add_process(std::move(s));
    engine.add_process(std::move(r));
    engine.set_delay_model(std::move(delay));
    engine.set_scheduler(std::make_unique<RoundRobinScheduler>());
    engine.init();
  }
};

TEST(Channels, EveryMessageEventuallyDelivered) {
  Rig rig(1, 200, std::make_unique<UniformDelay>(1, 50));
  rig.engine.run_until(
      [&] { return rig.receiver->order().size() == 200; }, 100000);
  EXPECT_EQ(rig.receiver->order().size(), 200u);
}

TEST(Channels, FixedDelayDeliversExactly) {
  Rig rig(2, 50, std::make_unique<FixedDelay>(5));
  rig.engine.run_until([&] { return rig.receiver->order().size() == 50; },
                       100000);
  ASSERT_EQ(rig.receiver->order().size(), 50u);
  for (Time t : rig.receiver->transit()) {
    // Delivery happens at the receiver's first step at or after the
    // deadline; round-robin alternation can add a bounded lag.
    EXPECT_GE(t, 5u);
    EXPECT_LE(t, 8u);
  }
}

TEST(Channels, FixedDelayPreservesFifo) {
  Rig rig(3, 100, std::make_unique<FixedDelay>(3));
  rig.engine.run_until([&] { return rig.receiver->order().size() == 100; },
                       100000);
  ASSERT_EQ(rig.receiver->order().size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(rig.receiver->order()[i], i + 1);
  }
}

TEST(Channels, UniformDelayReordersMessages) {
  Rig rig(4, 300, std::make_unique<UniformDelay>(1, 40));
  rig.engine.run_until([&] { return rig.receiver->order().size() == 300; },
                       200000);
  ASSERT_EQ(rig.receiver->order().size(), 300u);
  std::uint64_t inversions = 0;
  for (std::size_t i = 1; i < rig.receiver->order().size(); ++i) {
    if (rig.receiver->order()[i] < rig.receiver->order()[i - 1]) ++inversions;
  }
  EXPECT_GT(inversions, 0u) << "non-FIFO channel should reorder";
}

TEST(Channels, UniformDelayWithinBounds) {
  Rig rig(5, 200, std::make_unique<UniformDelay>(3, 9));
  rig.engine.run_until([&] { return rig.receiver->order().size() == 200; },
                       100000);
  for (Time t : rig.receiver->transit()) {
    EXPECT_GE(t, 3u);
    // Upper bound is the model max plus queueing lag: the receiver accepts
    // at most one message per sender per step, so same-deadline bursts
    // spread out over subsequent steps.
    EXPECT_LE(t, 9u + 60u);
  }
}

TEST(Channels, GeometricDelayRespectsCap) {
  Rig rig(6, 500, std::make_unique<GeometricDelay>(0.2, 30));
  rig.engine.run_until([&] { return rig.receiver->order().size() == 500; },
                       400000);
  ASSERT_EQ(rig.receiver->order().size(), 500u);
  for (Time t : rig.receiver->transit()) EXPECT_LE(t, 33u);
}

TEST(Channels, PartialSynchronyBoundsDelaysAfterGst) {
  const Time gst = 500, delta = 4;
  Rig rig(7, 400, std::make_unique<PartialSynchronyDelay>(gst, delta, 100));
  rig.engine.run_until([&] { return rig.receiver->order().size() == 400; },
                       400000);
  ASSERT_EQ(rig.receiver->order().size(), 400u);
  // Every message (even pre-GST sends) arrives by GST + delta;
  // post-GST sends arrive within delta (+ scheduling lag).
  const auto& order = rig.receiver->order();
  const auto& transit = rig.receiver->transit();
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_LE(transit[i], gst + delta);
  }
}

TEST(Channels, AdversarialOverrideSlowsOneChannel) {
  auto adv = std::make_unique<AdversarialDelay>(std::make_unique<FixedDelay>(2));
  adv->slow_channel(0, 1, 0, 1000000, 77);
  Rig rig(8, 100, std::move(adv));
  rig.engine.run_until([&] { return rig.receiver->order().size() == 100; },
                       200000);
  ASSERT_EQ(rig.receiver->order().size(), 100u);
  for (Time t : rig.receiver->transit()) EXPECT_GE(t, 77u);
}

TEST(Channels, AdversarialOverrideIsDirectional) {
  auto adv = std::make_unique<AdversarialDelay>(std::make_unique<FixedDelay>(2));
  adv->slow_channel(1, 0, 0, 1000000, 77);  // reverse direction only
  Rig rig(9, 100, std::move(adv));
  rig.engine.run_until([&] { return rig.receiver->order().size() == 100; },
                       200000);
  ASSERT_EQ(rig.receiver->order().size(), 100u);
  for (Time t : rig.receiver->transit()) EXPECT_LE(t, 5u);
}

TEST(Channels, ReceiveAtMostOnePerSenderPerStep) {
  // With delay 1 and a sender stepping twice per receiver step is impossible
  // under RR; instead use a burst: all messages become deliverable at once,
  // and the receiver must spread them over multiple steps.
  Engine engine({.seed = 10, .trace_capacity = 1 << 20});
  auto s = std::make_unique<Sender>(1, 10);
  auto r = std::make_unique<Receiver>();
  Receiver* receiver = r.get();
  engine.add_process(std::move(s));
  engine.add_process(std::move(r));
  engine.set_delay_model(std::make_unique<FixedDelay>(500));
  engine.set_scheduler(std::make_unique<RoundRobinScheduler>());
  engine.init();
  engine.run_until([&] { return receiver->order().size() == 10; }, 100000);
  ASSERT_EQ(receiver->order().size(), 10u);
  // All 10 had the same deadline; count distinct delivery steps via trace.
  std::vector<Time> deliver_times;
  for (const Event& event : engine.trace().events()) {
    if (event.kind == EventKind::kDeliver && event.pid == 1) {
      deliver_times.push_back(event.time);
    }
  }
  ASSERT_EQ(deliver_times.size(), 10u);
  for (std::size_t i = 1; i < deliver_times.size(); ++i) {
    EXPECT_GT(deliver_times[i], deliver_times[i - 1])
        << "two messages from one sender delivered in the same step";
  }
}

}  // namespace
}  // namespace wfd::sim
