// Conformance-vector runner: every tests/vectors/*.scenario.json pins one
// regime and the verdict each engine must reach on it. This test loads the
// whole corpus and runs each vector through every engine its "expect"
// section names (sim / mc / fuzz), via the adapter layer — the executable
// form of the claim that the three verification stacks agree wherever their
// envelopes overlap, and disagree exactly where the scenario says they
// must (the network-adversary vectors the reliable-channel model cannot
// express).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "fuzz/config.hpp"
#include "scenario/adapters.hpp"
#include "scenario/scenario.hpp"

namespace wfd {
namespace {

std::vector<std::string> vector_files() {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(WFD_VECTOR_DIR)) {
    const std::string name = entry.path().filename().string();
    if (name.find(".scenario.json") != std::string::npos) {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(ScenarioVectors, CorpusIsPresentAndWellFormed) {
  const std::vector<std::string> files = vector_files();
  EXPECT_GE(files.size(), 12u) << "conformance corpus shrank";
  for (const std::string& file : files) {
    scenario::Scenario s;
    std::string error;
    EXPECT_TRUE(scenario::load_scenario_file(file, &s, &error))
        << file << ": " << error;
    EXPECT_FALSE(s.name.empty()) << file;
    EXPECT_FALSE(s.description.empty())
        << file << ": vectors document their regime";
  }
}

TEST(ScenarioVectors, CorpusCoversTheAdversaryEnvelope) {
  // The corpus must keep exercising what the schema was built to express:
  // all three engines, seeded defects, and each network adversary — with at
  // least one adversary vector whose verdict flips against the clean
  // reliable-channel regime.
  bool any_mc = false, any_loss = false, any_dup = false;
  bool any_partition = false, any_adversary_violation = false;
  for (const std::string& file : vector_files()) {
    scenario::Scenario s;
    std::string error;
    ASSERT_TRUE(scenario::load_scenario_file(file, &s, &error)) << error;
    any_mc = any_mc || s.supports_mc();
    any_loss = any_loss || s.config.loss_rate > 0.0;
    any_dup = any_dup || s.config.dup_rate > 0.0;
    any_partition = any_partition || !s.config.partitions.empty();
    any_adversary_violation =
        any_adversary_violation ||
        (fuzz::has_network_adversary(s.config) && s.expect_sim.expected &&
         s.expect_sim.violation);
  }
  EXPECT_TRUE(any_mc);
  EXPECT_TRUE(any_loss);
  EXPECT_TRUE(any_dup);
  EXPECT_TRUE(any_partition);
  EXPECT_TRUE(any_adversary_violation)
      << "need a verdict flip the reliable-channel model cannot produce";
}

/// One gtest per vector would need dynamic registration; one test walking
/// the corpus with SCOPED_TRACE keeps failures attributable per file while
/// staying inside plain TEST().
TEST(ScenarioVectors, EveryEngineAgreesWithItsPinnedVerdict) {
  for (const std::string& file : vector_files()) {
    scenario::Scenario s;
    std::string error;
    ASSERT_TRUE(scenario::load_scenario_file(file, &s, &error)) << error;
    SCOPED_TRACE(s.name + " (" + file + ")");
    std::string why;
    EXPECT_TRUE(scenario::check_expectations(s, &why)) << why;
  }
}

}  // namespace
}  // namespace wfd
