// Reliable-broadcast substrate tests: validity, agreement under sender
// crash (the relay property), no duplication, and per-sender FIFO order.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "bcast/broadcast.hpp"
#include "sim/engine.hpp"

namespace wfd::bcast {
namespace {

constexpr sim::Port kPort = 40;

struct BcastRig {
  sim::Engine engine;
  std::vector<sim::ComponentHost*> hosts;
  std::vector<std::shared_ptr<ReliableBroadcast>> nodes;
  // delivered[receiver] = list of (origin, seq, body)
  std::vector<std::vector<std::tuple<sim::ProcessId, std::uint64_t,
                                     std::uint64_t>>> delivered;

  BcastRig(std::uint32_t n, std::uint64_t seed, bool fifo)
      : engine(sim::EngineConfig{.seed = seed}), delivered(n) {
    for (sim::ProcessId p = 0; p < n; ++p) {
      auto host = std::make_unique<sim::ComponentHost>();
      hosts.push_back(host.get());
      engine.add_process(std::move(host));
    }
    for (sim::ProcessId p = 0; p < n; ++p) {
      auto node = std::make_shared<ReliableBroadcast>(p, n, kPort, fifo);
      node->set_deliver([this, p](sim::Context&, sim::ProcessId origin,
                                  std::uint64_t seq, std::uint64_t body) {
        delivered[p].emplace_back(origin, seq, body);
      });
      hosts[p]->add_component(node, {kPort});
      nodes.push_back(node);
    }
    engine.set_delay_model(std::make_unique<sim::UniformDelay>(1, 12));
  }
};

/// Component that broadcasts a burst at init time (so broadcasts originate
/// inside a process step, as required).
class Burster final : public sim::Component {
 public:
  Burster(ReliableBroadcast& node, std::vector<std::uint64_t> bodies)
      : node_(node), bodies_(std::move(bodies)) {}
  void on_tick(sim::Context& ctx) override {
    if (next_ < bodies_.size()) node_.broadcast(ctx, bodies_[next_++]);
  }

 private:
  ReliableBroadcast& node_;
  std::vector<std::uint64_t> bodies_;
  std::size_t next_ = 0;
};

TEST(ReliableBroadcast, EveryCorrectProcessDeliversEveryMessage) {
  BcastRig rig(4, 1, /*fifo=*/false);
  auto burster = std::make_shared<Burster>(*rig.nodes[0],
                                           std::vector<std::uint64_t>{7, 8, 9});
  rig.hosts[0]->add_component(burster, {});
  rig.engine.init();
  rig.engine.run(20000);
  for (std::uint32_t p = 0; p < 4; ++p) {
    EXPECT_EQ(rig.delivered[p].size(), 3u) << "receiver " << p;
  }
}

TEST(ReliableBroadcast, NoDuplication) {
  BcastRig rig(5, 2, /*fifo=*/false);
  auto burster = std::make_shared<Burster>(
      *rig.nodes[2], std::vector<std::uint64_t>{1, 2, 3, 4, 5});
  rig.hosts[2]->add_component(burster, {});
  rig.engine.init();
  rig.engine.run(40000);
  for (std::uint32_t p = 0; p < 5; ++p) {
    std::map<std::pair<sim::ProcessId, std::uint64_t>, int> counts;
    for (const auto& [origin, seq, body] : rig.delivered[p]) {
      const int seen = ++counts[std::make_pair(origin, seq)];
      EXPECT_EQ(seen, 1) << "duplicate delivery at " << p << " of (" << origin
                         << "," << seq << ")";
    }
  }
}

TEST(ReliableBroadcast, AgreementUnderSenderCrash) {
  // The sender crashes right after its broadcast step; because relays go
  // out before local delivery, either nobody or everybody (correct)
  // delivers. With the crash a few ticks later, the sends are already in
  // flight: everybody must deliver.
  BcastRig rig(4, 3, /*fifo=*/false);
  auto burster = std::make_shared<Burster>(*rig.nodes[0],
                                           std::vector<std::uint64_t>{42});
  rig.hosts[0]->add_component(burster, {});
  rig.engine.schedule_crash(0, 10);  // after the first few steps
  rig.engine.init();
  rig.engine.run(30000);
  std::size_t deliverers = 0;
  for (std::uint32_t p = 1; p < 4; ++p) {
    deliverers += rig.delivered[p].empty() ? 0 : 1;
  }
  EXPECT_TRUE(deliverers == 0 || deliverers == 3)
      << "agreement violated: " << deliverers << "/3 delivered";
}

TEST(ReliableBroadcast, RelayCoversPartialSend) {
  // Even if only ONE correct process hears the original (we simulate by
  // crashing the sender immediately after its single step — its unicasts
  // are all in flight, so this reduces to: once any correct process
  // delivers, its relays reach everyone).
  BcastRig rig(6, 4, /*fifo=*/false);
  auto burster = std::make_shared<Burster>(*rig.nodes[5],
                                           std::vector<std::uint64_t>{13});
  rig.hosts[5]->add_component(burster, {});
  rig.engine.schedule_crash(5, 12);
  rig.engine.init();
  rig.engine.run(40000);
  std::size_t deliverers = 0;
  for (std::uint32_t p = 0; p < 5; ++p) {
    deliverers += rig.delivered[p].empty() ? 0 : 1;
  }
  EXPECT_TRUE(deliverers == 0 || deliverers == 5);
}

TEST(FifoReliableBroadcast, PerSenderOrder) {
  BcastRig rig(3, 5, /*fifo=*/true);
  auto burster = std::make_shared<Burster>(
      *rig.nodes[0], std::vector<std::uint64_t>{10, 11, 12, 13, 14, 15});
  rig.hosts[0]->add_component(burster, {});
  rig.engine.init();
  rig.engine.run(40000);
  for (std::uint32_t p = 0; p < 3; ++p) {
    ASSERT_EQ(rig.delivered[p].size(), 6u) << "receiver " << p;
    for (std::size_t i = 0; i < 6; ++i) {
      EXPECT_EQ(std::get<1>(rig.delivered[p][i]), i) << "seq order at " << p;
      EXPECT_EQ(std::get<2>(rig.delivered[p][i]), 10 + i) << "body at " << p;
    }
  }
}

TEST(FifoReliableBroadcast, InterleavedSendersEachFifo) {
  BcastRig rig(3, 6, /*fifo=*/true);
  auto burster0 = std::make_shared<Burster>(
      *rig.nodes[0], std::vector<std::uint64_t>{100, 101, 102});
  auto burster1 = std::make_shared<Burster>(
      *rig.nodes[1], std::vector<std::uint64_t>{200, 201, 202});
  rig.hosts[0]->add_component(burster0, {});
  rig.hosts[1]->add_component(burster1, {});
  rig.engine.init();
  rig.engine.run(40000);
  for (std::uint32_t p = 0; p < 3; ++p) {
    std::map<sim::ProcessId, std::uint64_t> next;
    for (const auto& [origin, seq, body] : rig.delivered[p]) {
      EXPECT_EQ(seq, next[origin]++) << "per-origin FIFO broken at " << p;
    }
    EXPECT_EQ(next[0], 3u);
    EXPECT_EQ(next[1], 3u);
  }
}

}  // namespace
}  // namespace wfd::bcast
