// Dining tests: the hygienic baseline and the wait-free <>WX algorithm,
// graded by the DiningMonitor — exclusion, wait-freedom, crash behaviour,
// scheduling-mistake convergence.
#include <gtest/gtest.h>

#include <string>

#include "graph/conflict_graph.hpp"
#include "harness/rig.hpp"

namespace wfd::dining {
namespace {

using harness::Rig;
using harness::RigOptions;

TEST(HygienicDining, InitialForkPlacementIsAcyclic) {
  Rig rig(RigOptions{.n = 3});
  auto instance = rig.add_hygienic_dining(10, 1, graph::make_ring(3));
  // Lower index holds a dirty fork on each edge; the other holds the token.
  EXPECT_TRUE(instance.diners[0]->holds_fork(1));
  EXPECT_TRUE(instance.diners[0]->fork_dirty(1));
  EXPECT_FALSE(instance.diners[1]->holds_fork(0));
  EXPECT_TRUE(instance.diners[1]->holds_token(0));
  EXPECT_TRUE(instance.diners[1]->holds_fork(2));
  EXPECT_TRUE(instance.diners[2]->holds_token(1));
}

TEST(HygienicDining, PerpetualExclusionWithoutFaults) {
  Rig rig(RigOptions{.seed = 3, .n = 5});
  auto instance = rig.add_hygienic_dining(10, 1, graph::make_ring(5));
  auto clients = rig.add_clients(instance, ClientConfig{});
  DiningMonitor monitor(rig.engine, instance.config);
  DiningMonitor::attach(rig.engine, monitor);
  rig.engine.init();
  rig.engine.run(60000);
  EXPECT_TRUE(monitor.perpetual_exclusion())
      << monitor.exclusion_violations() << " violations";
  EXPECT_GT(monitor.total_meals(), 100u);
}

TEST(HygienicDining, EveryDinerEatsRepeatedly) {
  Rig rig(RigOptions{.seed = 4, .n = 6});
  auto instance = rig.add_hygienic_dining(10, 1, graph::make_ring(6));
  auto clients = rig.add_clients(instance, ClientConfig{});
  rig.engine.init();
  rig.engine.run(80000);
  for (std::uint32_t i = 0; i < 6; ++i) {
    EXPECT_GT(instance.diners[i]->meals(), 20u) << "diner " << i;
  }
}

TEST(HygienicDining, CliqueContentionStillProgresses) {
  Rig rig(RigOptions{.seed = 5, .n = 4});
  auto instance = rig.add_hygienic_dining(10, 1, graph::make_clique(4));
  auto clients = rig.add_clients(instance,
                                 ClientConfig{.think_min = 1, .think_max = 2});
  DiningMonitor monitor(rig.engine, instance.config);
  DiningMonitor::attach(rig.engine, monitor);
  rig.engine.init();
  rig.engine.run(60000);
  EXPECT_TRUE(monitor.perpetual_exclusion());
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_GT(instance.diners[i]->meals(), 10u) << "diner " << i;
  }
}

TEST(HygienicDining, CrashStarvesNeighborsWithoutDetector) {
  // The fault-intolerant baseline: a crash while holding resources starves
  // the neighborhood — the behaviour wait-freedom forbids.
  Rig rig(RigOptions{.seed = 6, .n = 3});
  auto instance = rig.add_hygienic_dining(10, 1, graph::make_ring(3));
  // Diner 0 takes a long first meal and is crashed in the middle of it, so
  // it dies holding both (dirty) forks; 1 and 2 then starve on their
  // shared edges with 0.
  auto client0 = std::make_shared<DinerClient>(
      *instance.diners[0], ClientConfig{.think_min = 1,
                                        .think_max = 3,
                                        .eat_min = 5000,
                                        .eat_max = 5000});
  rig.hosts[0]->add_component(client0, {});
  for (std::uint32_t i : {1u, 2u}) {
    auto client = std::make_shared<DinerClient>(
        *instance.diners[i], ClientConfig{.think_min = 1, .think_max = 3});
    rig.hosts[i]->add_component(client, {});
  }
  rig.engine.schedule_crash(0, 2000);
  DiningMonitor monitor(rig.engine, instance.config);
  DiningMonitor::attach(rig.engine, monitor);
  rig.engine.init();
  rig.engine.run(80000);
  std::string detail;
  EXPECT_FALSE(monitor.wait_free(rig.engine.now(), 20000, &detail))
      << "baseline unexpectedly survived a crash";
}

TEST(WaitFreeDining, SurvivesCrashes) {
  Rig rig(RigOptions{.seed = 7, .n = 5, .detector_lag = 30});
  auto instance = rig.add_wait_free_dining(10, 1, graph::make_ring(5));
  auto clients = rig.add_clients(instance,
                                 ClientConfig{.think_min = 1, .think_max = 5});
  rig.engine.schedule_crash(1, 3000);
  rig.engine.schedule_crash(3, 5000);
  DiningMonitor monitor(rig.engine, instance.config);
  DiningMonitor::attach(rig.engine, monitor);
  rig.engine.init();
  rig.engine.run(100000);
  std::string detail;
  EXPECT_TRUE(monitor.wait_free(rig.engine.now(), 20000, &detail)) << detail;
  for (std::uint32_t i : {0u, 2u, 4u}) {
    EXPECT_GT(instance.diners[i]->meals(), 50u) << "diner " << i;
  }
}

TEST(WaitFreeDining, AllButOneCrash) {
  // Wait-freedom's defining scenario: any number of crashes, the survivor
  // still eats.
  Rig rig(RigOptions{.seed = 8, .n = 4, .detector_lag = 25});
  auto instance = rig.add_wait_free_dining(10, 1, graph::make_clique(4));
  auto clients = rig.add_clients(instance, ClientConfig{});
  rig.engine.schedule_crash(0, 1000);
  rig.engine.schedule_crash(1, 1500);
  rig.engine.schedule_crash(2, 2000);
  rig.engine.init();
  rig.engine.run(80000);
  EXPECT_GT(instance.diners[3]->meals(), 100u);
}

TEST(WaitFreeDining, NoMistakesWithPerfectPrefix) {
  // With a mistake-free detector and no crashes, the <>WX algorithm is
  // perpetually exclusive: suspicions are the only source of violations.
  Rig rig(RigOptions{.seed = 9, .n = 5});
  auto instance = rig.add_wait_free_dining(10, 1, graph::make_ring(5));
  auto clients = rig.add_clients(instance, ClientConfig{});
  DiningMonitor monitor(rig.engine, instance.config);
  DiningMonitor::attach(rig.engine, monitor);
  rig.engine.init();
  rig.engine.run(60000);
  EXPECT_TRUE(monitor.perpetual_exclusion());
}

TEST(WaitFreeDining, MistakeWindowCausesFinitelyManyViolations) {
  // Script a detector mistake: 0 wrongly suspects 1 during [500, 2500).
  // Violations may happen in that window, must stop afterwards (<>WX).
  RigOptions options{.seed = 10, .n = 2};
  options.mistakes = {{0, 1, 500, 2500}};
  Rig rig(options);
  auto instance = rig.add_wait_free_dining(10, 1, graph::make_pair());
  auto clients = rig.add_clients(
      instance,
      ClientConfig{.think_min = 1, .think_max = 2, .eat_min = 3, .eat_max = 8});
  DiningMonitor monitor(rig.engine, instance.config);
  DiningMonitor::attach(rig.engine, monitor);
  rig.engine.init();
  rig.engine.run(100000);
  EXPECT_GT(monitor.exclusion_violations(), 0u)
      << "adversarial window should force at least one double-eat";
  EXPECT_EQ(monitor.violations_since(4000), 0u)
      << "violations must cease after the detector converges";
  EXPECT_LE(monitor.last_violation(), 4000u);
}

TEST(WaitFreeDining, WaitFreedomUnderMistakes) {
  RigOptions options{.seed = 11, .n = 4, .detector_lag = 30};
  options.mistakes = {{0, 1, 100, 900}, {2, 3, 200, 1200}, {1, 0, 50, 400}};
  Rig rig(options);
  auto instance = rig.add_wait_free_dining(10, 1, graph::make_clique(4));
  auto clients = rig.add_clients(instance, ClientConfig{});
  rig.engine.schedule_crash(2, 4000);
  DiningMonitor monitor(rig.engine, instance.config);
  DiningMonitor::attach(rig.engine, monitor);
  rig.engine.init();
  rig.engine.run(120000);
  std::string detail;
  EXPECT_TRUE(monitor.wait_free(rig.engine.now(), 30000, &detail)) << detail;
  EXPECT_EQ(monitor.violations_since(6000), 0u);
}

TEST(DiningMonitor, CountsMealsAndWaits) {
  Rig rig(RigOptions{.seed = 12, .n = 2});
  auto instance = rig.add_wait_free_dining(10, 1, graph::make_pair());
  auto clients = rig.add_clients(instance, ClientConfig{});
  DiningMonitor monitor(rig.engine, instance.config);
  DiningMonitor::attach(rig.engine, monitor);
  rig.engine.init();
  rig.engine.run(30000);
  EXPECT_EQ(monitor.meals(0), instance.diners[0]->meals());
  EXPECT_EQ(monitor.meals(1), instance.diners[1]->meals());
  EXPECT_GT(monitor.max_wait(0), 0u);
}

TEST(DiningMonitor, TracksOvertaking) {
  // Freeze diner 1 in permanent hunger by having its client never get to
  // eat: use a pair where diner 0's client has tiny think times; overtakes
  // of the hungry neighbor must be recorded.
  Rig rig(RigOptions{.seed = 13, .n = 2});
  auto instance = rig.add_wait_free_dining(10, 1, graph::make_pair());
  // Client 0 eats constantly; diner 1 is made hungry once by a one-shot
  // client and then (its meals are slow) gets overtaken.
  auto client0 = std::make_shared<DinerClient>(
      *instance.diners[0],
      ClientConfig{.think_min = 1, .think_max = 1, .eat_min = 1, .eat_max = 1});
  rig.hosts[0]->add_component(client0, {});
  auto client1 = std::make_shared<DinerClient>(
      *instance.diners[1],
      ClientConfig{.think_min = 50, .think_max = 60, .eat_min = 1, .eat_max = 1});
  rig.hosts[1]->add_component(client1, {});
  DiningMonitor monitor(rig.engine, instance.config);
  DiningMonitor::attach(rig.engine, monitor);
  rig.engine.init();
  rig.engine.run(50000);
  EXPECT_GT(monitor.max_overtakes(0), 0u);
}

TEST(WaitFreeDining, PathGraphIndependentEatersOverlap) {
  // Non-neighbors may always eat together; only edges constrain.
  Rig rig(RigOptions{.seed = 14, .n = 3});
  auto instance = rig.add_wait_free_dining(10, 1, graph::make_path(3));
  auto clients = rig.add_clients(
      instance,
      ClientConfig{.think_min = 1, .think_max = 2, .eat_min = 5, .eat_max = 10});
  DiningMonitor monitor(rig.engine, instance.config);
  DiningMonitor::attach(rig.engine, monitor);
  rig.engine.init();
  rig.engine.run(60000);
  EXPECT_TRUE(monitor.perpetual_exclusion());
  // 0 and 2 are not neighbors: both should get plenty of meals.
  EXPECT_GT(monitor.meals(0), 100u);
  EXPECT_GT(monitor.meals(2), 100u);
}

TEST(WaitFreeDining, DeterministicAcrossRuns) {
  auto run_once = [] {
    Rig rig(RigOptions{.seed = 15, .n = 4});
    auto instance = rig.add_wait_free_dining(10, 1, graph::make_ring(4));
    auto clients = rig.add_clients(instance, ClientConfig{});
    rig.engine.init();
    rig.engine.run(20000);
    std::vector<std::uint64_t> meals;
    for (const auto& diner : instance.diners) meals.push_back(diner->meals());
    return meals;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace wfd::dining
