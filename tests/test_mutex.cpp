// FTME tests: wait-free mutual exclusion under *perpetual* weak exclusion
// using the trusting detector (Section 9's substrate), and the
// T-extraction corollary: running the paper's reduction over FTME boxes
// yields a detector with trusting accuracy.
#include <gtest/gtest.h>

#include <memory>

#include "detect/oracle.hpp"
#include "detect/properties.hpp"
#include "dining/client.hpp"
#include "dining/monitors.hpp"
#include "mutex/ra_mutex.hpp"
#include "reduce/extraction.hpp"
#include "reduce/ftme_box_factory.hpp"
#include "sim/engine.hpp"

namespace wfd::mutex {
namespace {

using detect::DetectorHistory;
using detect::Verdict;

/// Engine + hosts + one OracleTrusting per host + an n-member RA clique.
struct MutexRig {
  sim::Engine engine;
  std::vector<sim::ComponentHost*> hosts;
  std::vector<std::shared_ptr<detect::OracleTrusting>> detectors;
  std::vector<std::shared_ptr<RaMutexDiner>> diners;
  RaMutexConfig config;

  MutexRig(std::uint32_t n, std::uint64_t seed, sim::Time lag = 25)
      : engine(sim::EngineConfig{.seed = seed}) {
    for (sim::ProcessId p = 0; p < n; ++p) {
      auto host = std::make_unique<sim::ComponentHost>();
      hosts.push_back(host.get());
      engine.add_process(std::move(host));
    }
    std::vector<const detect::TrustingDetector*> views;
    for (sim::ProcessId p = 0; p < n; ++p) {
      auto oracle =
          std::make_shared<detect::OracleTrusting>(engine, p, n, lag, 0, 0xFD);
      detectors.push_back(oracle);
      hosts[p]->add_component(oracle, {});
      views.push_back(oracle.get());
    }
    config.port = 50;
    config.tag = 7;
    for (sim::ProcessId p = 0; p < n; ++p) config.members.push_back(p);
    diners = build_ra_mutex(hosts, config, views);
  }
};

TEST(RaMutex, PerpetualExclusionNoCrashes) {
  MutexRig rig(4, 41);
  dining::DiningMonitor monitor(
      rig.engine,
      dining::DiningInstanceConfig{rig.config.port, rig.config.tag,
                                   rig.config.members, graph::make_clique(4)});
  dining::DiningMonitor::attach(rig.engine, monitor);
  std::vector<std::shared_ptr<dining::DinerClient>> clients;
  for (std::uint32_t i = 0; i < 4; ++i) {
    auto client = std::make_shared<dining::DinerClient>(
        *rig.diners[i], dining::ClientConfig{.think_min = 1, .think_max = 4});
    rig.hosts[i]->add_component(client, {});
    clients.push_back(client);
  }
  rig.engine.init();
  rig.engine.run(80000);
  EXPECT_EQ(monitor.exclusion_violations(), 0u)
      << "perpetual weak exclusion violated";
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_GT(rig.diners[i]->meals(), 20u) << "member " << i;
  }
}

TEST(RaMutex, PerpetualExclusionUnderCrashes) {
  MutexRig rig(4, 42);
  dining::DiningMonitor monitor(
      rig.engine,
      dining::DiningInstanceConfig{rig.config.port, rig.config.tag,
                                   rig.config.members, graph::make_clique(4)});
  dining::DiningMonitor::attach(rig.engine, monitor);
  std::vector<std::shared_ptr<dining::DinerClient>> clients;
  for (std::uint32_t i = 0; i < 4; ++i) {
    auto client = std::make_shared<dining::DinerClient>(
        *rig.diners[i], dining::ClientConfig{.think_min = 1, .think_max = 4});
    rig.hosts[i]->add_component(client, {});
    clients.push_back(client);
  }
  rig.engine.schedule_crash(1, 2000);
  rig.engine.schedule_crash(2, 6000);
  rig.engine.init();
  rig.engine.run(120000);
  EXPECT_EQ(monitor.exclusion_violations(), 0u)
      << "exclusion must hold even across crash certificates";
  std::string detail;
  EXPECT_TRUE(monitor.wait_free(rig.engine.now(), 25000, &detail)) << detail;
  EXPECT_GT(rig.diners[0]->meals(), 50u);
  EXPECT_GT(rig.diners[3]->meals(), 50u);
}

TEST(RaMutex, SurvivorEatsAfterEveryoneElseDies) {
  MutexRig rig(3, 43);
  std::vector<std::shared_ptr<dining::DinerClient>> clients;
  for (std::uint32_t i = 0; i < 3; ++i) {
    auto client = std::make_shared<dining::DinerClient>(
        *rig.diners[i], dining::ClientConfig{.think_min = 1, .think_max = 2});
    rig.hosts[i]->add_component(client, {});
    clients.push_back(client);
  }
  rig.engine.schedule_crash(0, 500);
  rig.engine.schedule_crash(1, 700);
  rig.engine.init();
  rig.engine.run(60000);
  EXPECT_GT(rig.diners[2]->meals(), 100u);
}

TEST(RaMutex, CrashWhileEatingReleasesViaCertificate) {
  // Member 0 crashes inside its critical section; its OKs are gone, but
  // the others' T modules certify the crash and the CS frees up.
  MutexRig rig(3, 44);
  auto client0 = std::make_shared<dining::DinerClient>(
      *rig.diners[0], dining::ClientConfig{.think_min = 1,
                                           .think_max = 2,
                                           .eat_min = 4000,
                                           .eat_max = 4000});
  rig.hosts[0]->add_component(client0, {});
  for (std::uint32_t i : {1u, 2u}) {
    auto client = std::make_shared<dining::DinerClient>(
        *rig.diners[i], dining::ClientConfig{.think_min = 1, .think_max = 4});
    rig.hosts[i]->add_component(client, {});
  }
  rig.engine.schedule_crash(0, 1000);  // mid-meal (meal lasts 4000)
  rig.engine.init();
  rig.engine.run(80000);
  EXPECT_GT(rig.diners[1]->meals(), 50u);
  EXPECT_GT(rig.diners[2]->meals(), 50u);
}

// --- Section 9: extracting T from a perpetual-WX box ----------------------

struct TExtractionRig {
  sim::Engine engine;
  std::vector<sim::ComponentHost*> hosts;
  std::vector<std::shared_ptr<detect::OracleTrusting>> oracles;

  TExtractionRig(std::uint32_t n, std::uint64_t seed)
      : engine(sim::EngineConfig{.seed = seed}) {
    for (sim::ProcessId p = 0; p < n; ++p) {
      auto host = std::make_unique<sim::ComponentHost>();
      hosts.push_back(host.get());
      engine.add_process(std::move(host));
    }
    for (sim::ProcessId p = 0; p < n; ++p) {
      auto oracle =
          std::make_shared<detect::OracleTrusting>(engine, p, n, 25, 0, 0xFD);
      oracles.push_back(oracle);
      hosts[p]->add_component(oracle, {});
    }
  }
};

TEST(TExtraction, TrustingAccuracyOnCorrectPair) {
  TExtractionRig rig(2, 45);
  reduce::FtmeBoxFactory factory(
      [&rig](sim::ProcessId p) { return rig.oracles[p].get(); });
  auto extraction =
      reduce::build_full_extraction(rig.hosts, factory, reduce::ExtractionOptions{});
  // Grade the trusting view (tag + 1).
  DetectorHistory history(0xED + 1);
  rig.engine.trace().subscribe(
      [&history](const sim::Event& e) { history.on_event(e); });
  for (const auto& pair : extraction.pairs) {
    history.set_initial(pair.watcher, pair.subject, true);
  }
  rig.engine.init();
  rig.engine.run(200000);
  const Verdict verdict = history.trusting_accuracy(rig.engine);
  EXPECT_TRUE(verdict.holds) << verdict.detail;
  const auto* pair = extraction.find(0, 1);
  ASSERT_NE(pair, nullptr);
  EXPECT_TRUE(pair->witness->trusts_subject_T());
  EXPECT_FALSE(pair->witness->certainly_crashed_T());
}

TEST(TExtraction, CertificateOnlyAfterRealCrash) {
  TExtractionRig rig(2, 46);
  reduce::FtmeBoxFactory factory(
      [&rig](sim::ProcessId p) { return rig.oracles[p].get(); });
  auto extraction =
      reduce::build_full_extraction(rig.hosts, factory, reduce::ExtractionOptions{});
  DetectorHistory history(0xED + 1);
  rig.engine.trace().subscribe(
      [&history](const sim::Event& e) { history.on_event(e); });
  for (const auto& pair : extraction.pairs) {
    history.set_initial(pair.watcher, pair.subject, true);
  }
  rig.engine.schedule_crash(1, 30000);  // well after warm-up
  rig.engine.init();
  rig.engine.run(250000);
  const Verdict verdict = history.trusting_accuracy(rig.engine);
  EXPECT_TRUE(verdict.holds) << verdict.detail;
  const auto* pair = extraction.find(0, 1);
  ASSERT_NE(pair, nullptr);
  EXPECT_TRUE(pair->witness->certainly_crashed_T());
  // And the certificate was issued only after the crash.
  EXPECT_GE(history.last_flip(0, 1), 30000u);
}

TEST(TExtraction, EarlyCrashNeverCertified) {
  // Subject dies before warm-up completes: T's spec allows (requires)
  // permanent suspicion but no trusted->suspected certificate is needed;
  // what matters is that trust is never reported for the dead process.
  TExtractionRig rig(2, 47);
  reduce::FtmeBoxFactory factory(
      [&rig](sim::ProcessId p) { return rig.oracles[p].get(); });
  auto extraction =
      reduce::build_full_extraction(rig.hosts, factory, reduce::ExtractionOptions{});
  rig.engine.schedule_crash(1, 50);
  rig.engine.init();
  rig.engine.run(100000);
  const auto* pair = extraction.find(0, 1);
  ASSERT_NE(pair, nullptr);
  EXPECT_FALSE(pair->witness->trusts_subject_T());
  EXPECT_TRUE(pair->witness->suspects_subject());
}

}  // namespace
}  // namespace wfd::mutex
