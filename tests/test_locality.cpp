// Crash-locality tests: perpetual exclusion dining with <>P quarantine
// confines starvation to distance 1 from a crash, while plain hygienic
// dining lets it spread to distance 2 — and the wait-free <>WX algorithm
// has locality 0 (nobody starves). The design-space triangle of the
// paper's Sections 1-2, executable.
#include <gtest/gtest.h>

#include <memory>

#include "dining/locality_diner.hpp"
#include "graph/conflict_graph.hpp"
#include "harness/rig.hpp"

namespace wfd::dining {
namespace {

using harness::Rig;
using harness::RigOptions;

/// Path 0-1-2-3; process 0 crashes mid-meal (holding its forks); clients
/// drive everyone. Returns per-diner meal counts in the final window
/// (window meals == 0 -> starved).
template <class Builder>
std::vector<std::uint64_t> crash_scenario(Builder&& build, std::uint64_t seed,
                                          bool& exclusion_ok) {
  Rig rig(RigOptions{.seed = seed, .n = 4, .detector_lag = 30});
  DiningInstanceConfig config;
  config.port = 10;
  config.tag = 1;
  config.members = {0, 1, 2, 3};
  config.graph = graph::make_path(4);
  std::vector<const detect::FailureDetector*> fds;
  for (const auto& d : rig.detectors) fds.push_back(d.get());
  auto services = build(rig, config, fds);

  DiningMonitor monitor(rig.engine, config);
  DiningMonitor::attach(rig.engine, monitor);
  // Diner 0: one long meal, crashed in the middle of it.
  auto greedy = std::make_shared<DinerClient>(
      *services[0], ClientConfig{.think_min = 1,
                                 .think_max = 2,
                                 .eat_min = 5000,
                                 .eat_max = 5000});
  rig.hosts[0]->add_component(greedy, {});
  for (std::uint32_t i = 1; i < 4; ++i) {
    auto client = std::make_shared<DinerClient>(
        *services[i], ClientConfig{.think_min = 1, .think_max = 4});
    rig.hosts[i]->add_component(client, {});
  }
  rig.engine.schedule_crash(0, 2000);
  rig.engine.init();
  rig.engine.run(100000);
  std::vector<std::uint64_t> before;
  for (std::uint32_t i = 0; i < 4; ++i) before.push_back(monitor.meals(i));
  rig.engine.run(100000);
  std::vector<std::uint64_t> window;
  for (std::uint32_t i = 0; i < 4; ++i) {
    window.push_back(monitor.meals(i) - before[i]);
  }
  exclusion_ok = monitor.perpetual_exclusion();
  return window;
}

std::vector<DiningService*> as_services(
    Rig& rig, const DiningInstanceConfig& config,
    const std::vector<const detect::FailureDetector*>& fds, int which) {
  std::vector<DiningService*> out;
  if (which == 0) {  // plain hygienic (no detector)
    static std::vector<BuiltInstance> keep;
    keep.push_back(build_dining_instance(
        rig.hosts, config,
        std::vector<const detect::FailureDetector*>(4, nullptr)));
    for (auto& d : keep.back().diners) out.push_back(d.get());
  } else if (which == 1) {  // locality-1 quarantine
    static std::vector<BuiltLocalityInstance> keep;
    keep.push_back(build_locality_instance(rig.hosts, config, fds));
    for (auto& d : keep.back().diners) out.push_back(d.get());
  } else {  // wait-free <>WX
    static std::vector<BuiltInstance> keep;
    keep.push_back(build_dining_instance(rig.hosts, config, fds));
    for (auto& d : keep.back().diners) out.push_back(d.get());
  }
  return out;
}

TEST(Locality, PlainHygienicStarvesAtDistanceTwo) {
  bool exclusion_ok = false;
  auto window = crash_scenario(
      [](Rig& rig, const DiningInstanceConfig& c,
         const std::vector<const detect::FailureDetector*>& f) {
        return as_services(rig, c, f, 0);
      },
      11, exclusion_ok);
  EXPECT_TRUE(exclusion_ok);
  EXPECT_EQ(window[1], 0u) << "crash neighbor must starve (shares the fork)";
  EXPECT_EQ(window[2], 0u)
      << "distance-2 process starves too: its hungry neighbor hoards the "
         "clean fork";
  EXPECT_EQ(window[3], 0u)
      << "and the starvation cascades: each starving hungry diner hoards "
         "its clean forks, so plain hygienic has UNBOUNDED failure locality";
}

TEST(Locality, QuarantineConfinesStarvationToDistanceOne) {
  bool exclusion_ok = false;
  auto window = crash_scenario(
      [](Rig& rig, const DiningInstanceConfig& c,
         const std::vector<const detect::FailureDetector*>& f) {
        return as_services(rig, c, f, 1);
      },
      12, exclusion_ok);
  EXPECT_TRUE(exclusion_ok) << "quarantine must never break exclusion";
  EXPECT_EQ(window[1], 0u)
      << "the crash neighbor still starves (perpetual exclusion's price)";
  EXPECT_GT(window[2], 100u) << "distance 2 keeps eating (locality 1)";
  EXPECT_GT(window[3], 100u);
}

TEST(Locality, WaitFreeDiningHasLocalityZero) {
  bool exclusion_ok = false;
  auto window = crash_scenario(
      [](Rig& rig, const DiningInstanceConfig& c,
         const std::vector<const detect::FailureDetector*>& f) {
        return as_services(rig, c, f, 2);
      },
      13, exclusion_ok);
  // <>WX: the suspicion override may (finitely) violate exclusion but
  // nobody starves.
  EXPECT_GT(window[1], 100u) << "even the crash neighbor eats (wait-free)";
  EXPECT_GT(window[2], 100u);
  EXPECT_GT(window[3], 100u);
}

TEST(Locality, NoCrashesBehavesLikeHygienic) {
  Rig rig(RigOptions{.seed = 14, .n = 4});
  DiningInstanceConfig config;
  config.port = 10;
  config.tag = 1;
  config.members = {0, 1, 2, 3};
  config.graph = graph::make_ring(4);
  std::vector<const detect::FailureDetector*> fds;
  for (const auto& d : rig.detectors) fds.push_back(d.get());
  auto instance = build_locality_instance(rig.hosts, config, fds);
  std::vector<std::shared_ptr<DinerClient>> clients;
  for (std::uint32_t i = 0; i < 4; ++i) {
    auto client = std::make_shared<DinerClient>(*instance.diners[i],
                                                ClientConfig{});
    rig.hosts[i]->add_component(client, {});
    clients.push_back(client);
  }
  DiningMonitor monitor(rig.engine, config);
  DiningMonitor::attach(rig.engine, monitor);
  rig.engine.init();
  rig.engine.run(60000);
  EXPECT_TRUE(monitor.perpetual_exclusion());
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_GT(instance.diners[i]->meals(), 50u) << "diner " << i;
    EXPECT_FALSE(instance.diners[i]->in_quarantine());
  }
}

TEST(Locality, WrongfulSuspicionNeverBreaksExclusion) {
  RigOptions options{.seed = 15, .n = 3};
  options.mistakes = {{1, 0, 100, 5000}, {2, 1, 200, 4000}};
  Rig rig(options);
  DiningInstanceConfig config;
  config.port = 10;
  config.tag = 1;
  config.members = {0, 1, 2};
  config.graph = graph::make_ring(3);
  std::vector<const detect::FailureDetector*> fds;
  for (const auto& d : rig.detectors) fds.push_back(d.get());
  auto instance = build_locality_instance(rig.hosts, config, fds);
  std::vector<std::shared_ptr<DinerClient>> clients;
  for (std::uint32_t i = 0; i < 3; ++i) {
    auto client = std::make_shared<DinerClient>(*instance.diners[i],
                                                ClientConfig{});
    rig.hosts[i]->add_component(client, {});
    clients.push_back(client);
  }
  DiningMonitor monitor(rig.engine, config);
  DiningMonitor::attach(rig.engine, monitor);
  rig.engine.init();
  rig.engine.run(80000);
  EXPECT_TRUE(monitor.perpetual_exclusion())
      << "quarantine is about liveness; exclusion must be unconditional";
  EXPECT_GT(monitor.total_meals(), 100u);
}

}  // namespace
}  // namespace wfd::dining
