// Trace tooling tests: filtered dumps, delay statistics, diner timelines.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "graph/conflict_graph.hpp"
#include "harness/rig.hpp"
#include "sim/trace_tools.hpp"

namespace wfd::sim {
namespace {

using harness::Rig;
using harness::RigOptions;

class Chatter final : public Process {
 public:
  explicit Chatter(ProcessId peer) : peer_(peer) {}
  void on_step(Context& ctx) override {
    if (++count_ % 3 == 0) ctx.send(peer_, 0, Payload{1, 0, 0, 0});
  }

 private:
  ProcessId peer_;
  std::uint64_t count_ = 0;
};

TEST(TraceWriter, DumpsAndFilters) {
  Engine engine(EngineConfig{.seed = 1, .trace_capacity = 100000});
  engine.add_process(std::make_unique<Chatter>(1));
  engine.add_process(std::make_unique<Chatter>(0));
  engine.init();
  engine.run(300);

  std::ostringstream all;
  const std::size_t total =
      TraceWriter::write(all, engine.trace().events());
  EXPECT_GT(total, 300u);
  EXPECT_NE(all.str().find("send"), std::string::npos);

  std::ostringstream sends_only;
  const std::size_t sends = TraceWriter::write(
      sends_only, engine.trace().events(),
      TraceWriter::by_kind(EventKind::kSend));
  EXPECT_EQ(sends, engine.stats().messages_sent);

  std::ostringstream p0_only;
  TraceWriter::write(p0_only, engine.trace().events(),
                     TraceWriter::by_process(0));
  EXPECT_EQ(p0_only.str().find("p1 "), std::string::npos);

  std::ostringstream windowed;
  const std::size_t in_window = TraceWriter::write(
      windowed, engine.trace().events(), TraceWriter::by_time(100, 200));
  EXPECT_GT(in_window, 0u);
  EXPECT_LT(in_window, total);
}

TEST(DelayStats, MatchesSendsToDeliveries) {
  Engine engine(EngineConfig{.seed = 2});
  engine.add_process(std::make_unique<Chatter>(1));
  engine.add_process(std::make_unique<Chatter>(0));
  engine.set_delay_model(std::make_unique<FixedDelay>(5));
  engine.set_scheduler(std::make_unique<RoundRobinScheduler>());
  DelayStats stats;
  engine.trace().subscribe([&](const Event& e) { stats.on_event(e); });
  engine.init();
  engine.run(3000);
  EXPECT_GT(stats.matched(), 100u);
  const Summary& channel = stats.channel(0, 1);
  EXPECT_GT(channel.count(), 0u);
  EXPECT_GE(channel.min(), 5.0);
  EXPECT_LE(channel.max(), 10.0);  // fixed delay + bounded scheduling lag
  EXPECT_EQ(stats.channel(1, 0).count(), stats.channel(0, 1).count());
}

TEST(DinerTimeline, RendersPhases) {
  Rig rig(RigOptions{.seed = 3, .n = 2});
  auto instance = rig.add_wait_free_dining(10, 1, graph::make_pair());
  auto clients = rig.add_clients(instance, dining::ClientConfig{});
  DinerTimeline timeline(1, {0, 1}, /*bucket=*/500);
  rig.engine.trace().subscribe(
      [&](const Event& e) { timeline.on_event(e); });
  rig.engine.init();
  rig.engine.run(20000);
  const std::string rendered = timeline.render(rig.engine.now());
  // Two rows, both containing at least one eating glyph.
  EXPECT_NE(rendered.find("p0 "), std::string::npos);
  EXPECT_NE(rendered.find("p1 "), std::string::npos);
  EXPECT_NE(rendered.find('E'), std::string::npos);
  const std::size_t newline = rendered.find('\n');
  ASSERT_NE(newline, std::string::npos);
  EXPECT_GT(newline, 20u);  // a real row of buckets
}

TEST(DinerTimeline, MarksCrashes) {
  Rig rig(RigOptions{.seed = 4, .n = 2});
  auto instance = rig.add_wait_free_dining(10, 1, graph::make_pair());
  auto clients = rig.add_clients(instance, dining::ClientConfig{});
  DinerTimeline timeline(1, {0, 1}, /*bucket=*/500);
  rig.engine.trace().subscribe(
      [&](const Event& e) { timeline.on_event(e); });
  rig.engine.schedule_crash(1, 5000);
  rig.engine.init();
  rig.engine.run(20000);
  const std::string rendered = timeline.render(rig.engine.now());
  EXPECT_NE(rendered.find('#'), std::string::npos);
  // The crash glyph persists to the end of row p1.
  const std::size_t row1 = rendered.find("p1 ");
  ASSERT_NE(row1, std::string::npos);
  const std::size_t row1_end = rendered.find('\n', row1);
  EXPECT_EQ(rendered[row1_end - 1], '#');
}

}  // namespace
}  // namespace wfd::sim
