// Direct unit tests for the scripted (adversary-controlled) dining box —
// the stand-in for "every legal WF-<>WX solution" in the necessity
// experiments. Its contract must itself be trustworthy.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "dining/client.hpp"
#include "dining/monitors.hpp"
#include "dining/scripted_box.hpp"
#include "graph/conflict_graph.hpp"
#include "sim/engine.hpp"

namespace wfd::dining {
namespace {

struct BoxRig {
  sim::Engine engine;
  std::vector<sim::ComponentHost*> hosts;
  BuiltScriptedBox box;
  ScriptedBoxConfig config;

  BoxRig(std::uint32_t n, std::uint64_t seed, sim::Time exclusive_from,
         BoxSemantics semantics, std::uint32_t burst = 0)
      : engine(sim::EngineConfig{.seed = seed}) {
    for (sim::ProcessId p = 0; p < n; ++p) {
      auto host = std::make_unique<sim::ComponentHost>();
      hosts.push_back(host.get());
      engine.add_process(std::move(host));
    }
    config.port = 10;
    config.tag = 1;
    for (sim::ProcessId p = 0; p < n; ++p) config.members.push_back(p);
    config.exclusive_from = exclusive_from;
    config.semantics = semantics;
    config.member0_burst = burst;
    box = build_scripted_box(engine, hosts, config);
  }

  DiningInstanceConfig monitor_config() const {
    return DiningInstanceConfig{config.port, config.tag, config.members,
                                graph::make_clique(
                                    static_cast<std::uint32_t>(hosts.size()))};
  }
};

TEST(ScriptedBox, ExclusiveSuffixIsExclusive) {
  BoxRig rig(3, 1, /*exclusive_from=*/1000, BoxSemantics::kLockout);
  DiningMonitor monitor(rig.engine, rig.monitor_config());
  DiningMonitor::attach(rig.engine, monitor);
  for (std::uint32_t i = 0; i < 3; ++i) {
    auto client = std::make_shared<DinerClient>(
        *rig.box.diners[i], ClientConfig{.think_min = 1, .think_max = 3});
    rig.hosts[i]->add_component(client, {});
  }
  rig.engine.init();
  rig.engine.run(80000);
  EXPECT_EQ(monitor.violations_since(2000), 0u);
  EXPECT_GT(monitor.total_meals(), 100u);
}

TEST(ScriptedBox, MistakePrefixOverlapsFreely) {
  BoxRig rig(3, 2, /*exclusive_from=*/20000, BoxSemantics::kLockout);
  DiningMonitor monitor(rig.engine, rig.monitor_config());
  DiningMonitor::attach(rig.engine, monitor);
  for (std::uint32_t i = 0; i < 3; ++i) {
    auto client = std::make_shared<DinerClient>(
        *rig.box.diners[i],
        ClientConfig{.think_min = 1, .think_max = 2, .eat_min = 10,
                     .eat_max = 20});
    rig.hosts[i]->add_component(client, {});
  }
  rig.engine.init();
  rig.engine.run(120000);
  EXPECT_GT(monitor.exclusion_violations(), 0u)
      << "the prefix should grant overlapping meals";
  EXPECT_EQ(monitor.violations_since(22000), 0u);
}

TEST(ScriptedBox, WaitFreeUnderMemberCrash) {
  BoxRig rig(3, 3, /*exclusive_from=*/0, BoxSemantics::kLockout);
  DiningMonitor monitor(rig.engine, rig.monitor_config());
  DiningMonitor::attach(rig.engine, monitor);
  for (std::uint32_t i = 0; i < 3; ++i) {
    auto client = std::make_shared<DinerClient>(
        *rig.box.diners[i],
        ClientConfig{.think_min = 1, .think_max = 3, .eat_min = 500,
                     .eat_max = 500});
    rig.hosts[i]->add_component(client, {});
  }
  // Member 1 dies mid-meal; the ground-truth expiry must free the lock.
  rig.engine.schedule_crash(1, 800);
  rig.engine.init();
  rig.engine.run(100000);
  std::string detail;
  EXPECT_TRUE(monitor.wait_free(rig.engine.now(), 25000, &detail)) << detail;
  EXPECT_GT(monitor.meals(0), 20u);
  EXPECT_GT(monitor.meals(2), 20u);
}

TEST(ScriptedBox, ForkBasedPrefixEaterHoldsNoLock) {
  BoxRig rig(2, 4, /*exclusive_from=*/500, BoxSemantics::kForkBased);
  // Diner 1 enters during the prefix and never exits.
  auto hog = std::make_shared<DinerClient>(
      *rig.box.diners[1],
      ClientConfig{.think_min = 1, .think_max = 1, .never_exit = true});
  rig.hosts[1]->add_component(hog, {});
  auto client = std::make_shared<DinerClient>(
      *rig.box.diners[0],
      ClientConfig{.think_min = 1, .think_max = 2, .eat_min = 1, .eat_max = 2});
  rig.hosts[0]->add_component(client, {});
  rig.engine.init();
  rig.engine.run(60000);
  EXPECT_EQ(rig.box.diners[1]->state(), DinerState::kEating);
  EXPECT_GT(client->meals(), 200u)
      << "the fork-based box must keep serving member 0";
}

TEST(ScriptedBox, LockoutPrefixEaterBlocksForever) {
  BoxRig rig(2, 5, /*exclusive_from=*/500, BoxSemantics::kLockout);
  auto hog = std::make_shared<DinerClient>(
      *rig.box.diners[1],
      ClientConfig{.think_min = 1, .think_max = 1, .never_exit = true});
  rig.hosts[1]->add_component(hog, {});
  auto client = std::make_shared<DinerClient>(
      *rig.box.diners[0],
      ClientConfig{.think_min = 1, .think_max = 2, .eat_min = 1, .eat_max = 2});
  rig.hosts[0]->add_component(client, {});
  rig.engine.init();
  rig.engine.run(60000);
  const std::uint64_t early = client->meals();
  rig.engine.run(60000);
  EXPECT_EQ(client->meals(), early)
      << "post-prefix, the never-exiting live eater locks member 0 out";
}

TEST(ScriptedBox, BurstPolicyStillServesEveryone) {
  BoxRig rig(2, 6, /*exclusive_from=*/0, BoxSemantics::kLockout,
             /*burst=*/4);
  for (std::uint32_t i = 0; i < 2; ++i) {
    auto client = std::make_shared<DinerClient>(
        *rig.box.diners[i], ClientConfig{.think_min = 1, .think_max = 2});
    rig.hosts[i]->add_component(client, {});
  }
  DiningMonitor monitor(rig.engine, rig.monitor_config());
  DiningMonitor::attach(rig.engine, monitor);
  rig.engine.init();
  rig.engine.run(80000);
  // Unfair but wait-free: member 1 still eats plenty.
  EXPECT_GT(monitor.meals(1), 100u);
  EXPECT_GT(monitor.meals(0), monitor.meals(1) / 4)
      << "sanity: member 0 is not starved either";
}

TEST(ScriptedBox, GrantCountMatchesMeals) {
  BoxRig rig(2, 7, /*exclusive_from=*/0, BoxSemantics::kLockout);
  for (std::uint32_t i = 0; i < 2; ++i) {
    auto client = std::make_shared<DinerClient>(
        *rig.box.diners[i], ClientConfig{.think_min = 2, .think_max = 5});
    rig.hosts[i]->add_component(client, {});
  }
  DiningMonitor monitor(rig.engine, rig.monitor_config());
  DiningMonitor::attach(rig.engine, monitor);
  rig.engine.init();
  rig.engine.run(50000);
  // Every meal corresponds to exactly one grant (one may be in flight).
  EXPECT_LE(rig.box.manager->grants_issued() - monitor.total_meals(), 1u);
}

}  // namespace
}  // namespace wfd::dining
