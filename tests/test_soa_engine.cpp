// The SoA transit store and the sharded flat engine carry a single
// contract: STORAGE AND PARTITIONING ARE NEVER OBSERVABLE.
//
//   * Engine with TransitKind::kSoa is bit-identical to the legacy
//     per-destination calendar queues — same event trace, same stats, same
//     fuzz signature — over the whole conformance-vector corpus, every
//     scheduler, crashes, and the golden fingerprints pinned against the
//     original heap engine two overhauls ago.
//   * run_flat() is bit-identical at any shard count — 1, 2, 8, and
//     oversubscribed past the core count — same stats, same signature,
//     same merged (tick, pid) event stream.
//   * The obs registry mirror agrees exactly with the run: flat.* counters
//     equal FlatStats, and a Perfetto export of the merged events validates
//     against the registry's sim.events.* counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dining/client.hpp"
#include "fuzz/config.hpp"
#include "fuzz/oracles.hpp"
#include "graph/conflict_graph.hpp"
#include "harness/rig.hpp"
#include "obs/metrics.hpp"
#include "obs/perfetto.hpp"
#include "reduce/extraction.hpp"
#include "scenario/scenario.hpp"
#include "sim/flat_dining.hpp"
#include "sim/sharded.hpp"
#include "sim/soa_transit.hpp"

namespace wfd::sim {
namespace {

bool same_event(const Event& a, const Event& b) {
  return a.time == b.time && a.kind == b.kind && a.pid == b.pid &&
         a.a == b.a && a.b == b.b && a.c == b.c;
}

// --- SoaTransit in isolation ------------------------------------------------

/// Fill a message slot with an identifiable body.
void stamp(Message& slot, ProcessId dst, std::uint64_t seq) {
  slot.src = 0;
  slot.dst = dst;
  slot.port = 7;
  slot.seq = seq;
  slot.payload = Payload{1, seq, 0, 0};
}

TEST(SoaTransit, DrainsInDeliverAtThenSeqOrderAcrossAllBands) {
  SoaTransit transit(2);
  std::uint64_t seq = 0;
  // Interleave pushes landing in the near wheel, the far wheel, and the
  // outer band (past ~1M ticks), all for destination 0, plus noise for 1.
  const Time far_start = 2 * SoaTransit::kFarWidth;  // initial horizon
  const Time outer_start =
      far_start + SoaTransit::kFarWidth * SoaTransit::kFarCount;
  const std::vector<Time> dues = {
      5,      outer_start + 9000, 700,  outer_start + 17,
      40000,  outer_start + 17,   5,    far_start + 12345,
      260000, 3,                  5000, outer_start + 9000,
  };
  for (const Time due : dues) {
    stamp(transit.push(due, 0), 0, seq++);
    stamp(transit.push(due + 1, 1), 1, seq++);
  }
  EXPECT_EQ(transit.size(), 2 * dues.size());

  // Expected order for dst 0: sort the pushes by (due, push index).
  std::vector<std::pair<Time, std::uint64_t>> expected;
  for (std::size_t i = 0; i < dues.size(); ++i) {
    expected.push_back({dues[i], 2 * i});  // seq of the dst-0 push
  }
  std::stable_sort(expected.begin(), expected.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });

  std::vector<std::pair<Time, std::uint64_t>> got;
  const Time last = outer_start + 9001;
  for (Time now = 1; now <= last; ++now) {
    transit.advance(now);
    transit.drain_ready(0, [&](const InTransit& item) {
      got.push_back({item.deliver_at, item.msg.seq});
      EXPECT_EQ(item.deliver_at, now);
      return true;
    });
  }
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], expected[i]) << "position " << i;
  }
  EXPECT_EQ(transit.pending(0), 0u);
  EXPECT_EQ(transit.size(), dues.size());  // dst 1 still queued
}

TEST(SoaTransit, DeferredItemsStayInOrderAndClearSettlesCounts) {
  SoaTransit transit(3);
  for (std::uint64_t i = 0; i < 6; ++i) stamp(transit.push(4, 2), 2, i);
  stamp(transit.push(9000, 2), 2, 6);
  for (Time now = 1; now <= 4; ++now) transit.advance(now);

  // Defer everything once (one-per-sender step semantics does this), then
  // drain: order must be unchanged.
  transit.drain_ready(2, [](const InTransit&) { return false; });
  std::uint64_t want = 0;
  transit.drain_ready(2, [&](const InTransit& item) {
    EXPECT_EQ(item.msg.seq, want++);
    return want <= 3;  // consume 3, defer the rest again
  });
  EXPECT_EQ(transit.pending(2), 4u);  // 3 deferred + 1 in the far wheel

  // Crash the destination: counters settle instantly, wheel slots lazily.
  EXPECT_EQ(transit.clear_dst(2), 4u);
  EXPECT_EQ(transit.pending(2), 0u);
  EXPECT_EQ(transit.size(), 0u);
  for (Time now = 5; now <= 9000; ++now) transit.advance(now);  // no crash
  EXPECT_FALSE(transit.has_ready(2));
}

// --- Engine bit-identity: SoA vs legacy calendar queues ---------------------

std::vector<std::string> vector_files() {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(WFD_VECTOR_DIR)) {
    const std::string name = entry.path().filename().string();
    if (name.find(".scenario.json") != std::string::npos) {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

fuzz::RunResult run_mode(const fuzz::FuzzConfig& config, TransitKind transit,
                         fuzz::RunCapture& capture) {
  capture = fuzz::RunCapture{};
  capture.transit = transit;
  return fuzz::run_config(config, capture);
}

void expect_bit_identical(const fuzz::FuzzConfig& config,
                          const std::string& label) {
  fuzz::RunCapture legacy_capture, soa_capture;
  const fuzz::RunResult legacy =
      run_mode(config, TransitKind::kCalendar, legacy_capture);
  const fuzz::RunResult soa = run_mode(config, TransitKind::kSoa, soa_capture);

  EXPECT_EQ(legacy.signature, soa.signature) << label;
  EXPECT_EQ(legacy.failures.size(), soa.failures.size()) << label;
  for (std::size_t i = 0;
       i < std::min(legacy.failures.size(), soa.failures.size()); ++i) {
    EXPECT_EQ(legacy.failures[i].oracle, soa.failures[i].oracle) << label;
    EXPECT_EQ(legacy.failures[i].at, soa.failures[i].at) << label;
  }
  const fuzz::RunStats& a = legacy.stats;
  const fuzz::RunStats& b = soa.stats;
  EXPECT_EQ(a.steps, b.steps) << label;
  EXPECT_EQ(a.messages_sent, b.messages_sent) << label;
  EXPECT_EQ(a.messages_delivered, b.messages_delivered) << label;
  EXPECT_EQ(a.messages_dropped, b.messages_dropped) << label;
  EXPECT_EQ(a.messages_lost, b.messages_lost) << label;
  EXPECT_EQ(a.messages_duplicated, b.messages_duplicated) << label;
  EXPECT_EQ(a.messages_retransmitted, b.messages_retransmitted) << label;
  EXPECT_EQ(a.in_transit, b.in_transit) << label;
  EXPECT_EQ(a.total_meals, b.total_meals) << label;
  EXPECT_EQ(legacy_capture.end_time, soa_capture.end_time) << label;
  ASSERT_EQ(legacy_capture.events.size(), soa_capture.events.size()) << label;
  for (std::size_t i = 0; i < legacy_capture.events.size(); ++i) {
    ASSERT_TRUE(same_event(legacy_capture.events[i], soa_capture.events[i]))
        << label << ": first divergence at event " << i << ": "
        << to_string(legacy_capture.events[i]) << " vs "
        << to_string(soa_capture.events[i]);
  }
}

TEST(SoaEngineDifferential, WholeVectorCorpusIsBitIdentical) {
  const std::vector<std::string> files = vector_files();
  ASSERT_GE(files.size(), 12u);
  for (const std::string& file : files) {
    scenario::Scenario scenario;
    std::string error;
    ASSERT_TRUE(scenario::load_scenario_file(file, &scenario, &error))
        << file << ": " << error;
    expect_bit_identical(scenario.config,
                         std::filesystem::path(file).filename().string());
  }
}

TEST(SoaEngineDifferential, AdversaryRegimesWithRetransmitAreBitIdentical) {
  // Regimes past the corpus: loss + duplication + partitions + retransmit
  // all at once, both dining and extraction targets.
  for (const bool extraction : {false, true}) {
    fuzz::FuzzConfig config;
    config.seed = 99;
    config.n = 5;
    config.steps = 30000;
    config.target =
        extraction ? fuzz::TargetKind::kExtraction : fuzz::TargetKind::kDining;
    config.scheduler = fuzz::SchedulerKind::kRandom;
    config.loss_rate = 0.08;
    config.dup_rate = 0.05;
    config.dup_spread = 16;
    config.partitions.push_back({300, 900, {0, 1}});
    config.retransmit_every = 32;
    config.retransmit_max = 8;
    config.crashes.push_back({4, 4000});
    expect_bit_identical(fuzz::normalize(config),
                         extraction ? "extraction+adversary" : "dining+adversary");
  }
}

// --- golden fingerprints under SoA (mirrors test_determinism.cpp) -----------

struct TraceHasher {
  std::uint64_t hash = 1469598103934665603ull;
  std::uint64_t events = 0;

  void mix(std::uint64_t word) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (word >> (8 * byte)) & 0xff;
      hash *= 1099511628211ull;
    }
  }
  void on_event(const Event& e) {
    mix(e.time);
    mix(static_cast<std::uint64_t>(e.kind));
    mix(e.pid);
    mix(e.a);
    mix(e.b);
    mix(e.c);
    ++events;
  }
};

struct Fingerprint {
  std::uint64_t trace_hash = 0;
  std::uint64_t events = 0;
  std::uint64_t stats_hash = 0;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

std::uint64_t hash_stats(const Engine& engine) {
  TraceHasher h;
  const EngineStats& s = engine.stats();
  h.mix(s.steps);
  h.mix(s.messages_sent);
  h.mix(s.messages_delivered);
  h.mix(s.messages_dropped);
  h.mix(s.crashes);
  h.mix(engine.now());
  return h.hash;
}

Fingerprint run_reduction_soa(std::uint64_t seed) {
  harness::Rig rig(harness::RigOptions{
      .seed = seed, .n = 3, .detector_lag = 25, .transit = TransitKind::kSoa});
  reduce::WaitFreeBoxFactory factory(
      [&rig](ProcessId p) { return rig.detectors[p].get(); });
  auto extraction = reduce::build_full_extraction(rig.hosts, factory,
                                                  reduce::ExtractionOptions{});
  TraceHasher hasher;
  rig.engine.trace().subscribe(
      [&hasher](const Event& e) { hasher.on_event(e); });
  rig.engine.schedule_crash(2, 5000);
  rig.engine.init();
  rig.engine.run(20000);
  return {hasher.hash, hasher.events, hash_stats(rig.engine)};
}

Fingerprint run_hygienic_soa(std::uint64_t seed) {
  harness::Rig rig(harness::RigOptions{
      .seed = seed, .n = 5, .transit = TransitKind::kSoa});
  auto instance = rig.add_hygienic_dining(10, 1, graph::make_ring(5));
  auto clients = rig.add_clients(instance, dining::ClientConfig{});
  TraceHasher hasher;
  rig.engine.trace().subscribe(
      [&hasher](const Event& e) { hasher.on_event(e); });
  rig.engine.init();
  rig.engine.run(20000);
  return {hasher.hash, hasher.events, hash_stats(rig.engine)};
}

// The same constants test_determinism.cpp pins for the legacy storage —
// captured from the ORIGINAL heap-based engine, two transit overhauls ago.
constexpr Fingerprint kGoldenReduction{3659772812120896702ull, 28985,
                                       13410170420198056445ull};
constexpr Fingerprint kGoldenHygienic{2405967122402567080ull, 25494,
                                      6419710400179810867ull};

TEST(SoaEngineGolden, ReductionFingerprintSurvivesAThirdTransitOverhaul) {
  EXPECT_EQ(run_reduction_soa(22), kGoldenReduction);
}

TEST(SoaEngineGolden, HygienicFingerprintSurvivesAThirdTransitOverhaul) {
  EXPECT_EQ(run_hygienic_soa(3), kGoldenHygienic);
}

// --- scheduler sweep --------------------------------------------------------

class RingGossip final : public Process {
 public:
  explicit RingGossip(std::uint32_t n) : n_(n) {}
  void on_step(Context& ctx) override {
    ++ticks_;
    ctx.send((ctx.self() + 1) % n_, 1, Payload{1, ticks_, 0, 0});
  }

 private:
  std::uint32_t n_;
  std::uint64_t ticks_ = 0;
};

Fingerprint run_gossip(TransitKind transit, int scheduler, std::uint64_t seed,
                       bool with_crashes) {
  constexpr std::uint32_t n = 6;
  Engine engine({.seed = seed, .transit = transit});
  for (std::uint32_t p = 0; p < n; ++p) {
    engine.add_process(std::make_unique<RingGossip>(n));
  }
  switch (scheduler) {
    case 0:
      engine.set_scheduler(std::make_unique<RoundRobinScheduler>());
      break;
    case 1:
      engine.set_scheduler(std::make_unique<RandomScheduler>());
      break;
    case 2:
      engine.set_scheduler(std::make_unique<WeightedScheduler>(
          std::vector<std::uint64_t>{1, 3, 1, 7, 2, 5}));
      break;
    default:
      engine.set_scheduler(std::make_unique<PausingScheduler>(
          std::vector<PausingScheduler::Pause>{{0, 100, 900},
                                               {3, 2000, 2500}}));
      break;
  }
  if (with_crashes) {
    engine.schedule_crash(1, 500);
    engine.schedule_crash(4, 500);
    engine.schedule_crash(2, 2000);
  }
  TraceHasher hasher;
  engine.trace().subscribe([&hasher](const Event& e) { hasher.on_event(e); });
  engine.init();
  engine.run(10000);
  return {hasher.hash, hasher.events, hash_stats(engine)};
}

TEST(SoaEngineDifferential, EverySchedulerMatchesLegacyWithAndWithoutCrashes) {
  for (int scheduler = 0; scheduler < 4; ++scheduler) {
    for (const bool crashes : {false, true}) {
      EXPECT_EQ(run_gossip(TransitKind::kCalendar, scheduler, 11, crashes),
                run_gossip(TransitKind::kSoa, scheduler, 11, crashes))
          << "scheduler " << scheduler << " crashes " << crashes;
    }
  }
}

// --- sharded flat engine ----------------------------------------------------

FlatConfig shard_config(std::uint32_t shards) {
  FlatConfig config;
  config.seed = 77;
  config.n = 96;
  config.steps = 4000;
  config.shards = shards;
  config.delay_min = 1;
  config.delay_max = 4;
  config.hunger_pct = 30;
  config.eat_ticks = 3;
  config.hb_every = 16;
  config.suspect_after = 64;  // > hb_every + delay_max: no false suspicion
  config.crashes = {{5, 100}, {17, 700}};
  config.record_events = true;
  return config;
}

TEST(ShardedFlat, BitIdenticalAtEveryShardCountIncludingOversubscribed) {
  const FlatResult base = run_flat(shard_config(1));
  EXPECT_GT(base.stats.meals, 0u);
  EXPECT_EQ(base.stats.crashes, 2u);
  EXPECT_EQ(base.stats.messages_sent,
            base.stats.messages_delivered + base.stats.messages_dropped +
                base.in_flight);

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  for (const std::uint32_t shards :
       {2u, 8u, 2 * hw}) {  // oversubscribed: 2x the machine's cores
    const FlatResult got = run_flat(shard_config(shards));
    EXPECT_EQ(got.signature, base.signature) << shards << " shards";
    EXPECT_EQ(got.stats, base.stats) << shards << " shards";
    EXPECT_EQ(got.in_flight, base.in_flight) << shards << " shards";
    ASSERT_EQ(got.events.size(), base.events.size()) << shards << " shards";
    for (std::size_t i = 0; i < got.events.size(); ++i) {
      ASSERT_TRUE(same_event(got.events[i], base.events[i]))
          << shards << " shards: first divergence at event " << i;
    }
  }
}

TEST(ShardedFlat, RunsArePureFunctionsOfSeed) {
  FlatConfig config = shard_config(2);
  const FlatResult a = run_flat(config);
  const FlatResult b = run_flat(config);
  EXPECT_EQ(a.signature, b.signature);
  config.seed = 78;
  EXPECT_NE(run_flat(config).signature, a.signature);
}

/// Did `pid` ever start eating in `result`?
bool ever_ate(const FlatResult& result, ProcessId pid) {
  for (const Event& event : result.events) {
    if (event.kind == EventKind::kDinerTransition && event.pid == pid &&
        event.c == static_cast<std::uint64_t>(FlatPhase::kEating)) {
      return true;
    }
  }
  return false;
}

TEST(ShardedFlat, SuspicionOverrideKeepsTheCrashedForkHoldersNeighborEating) {
  // Diner 5 dies at tick 0 holding the edge-5 fork (the initial dirty-fork
  // orientation puts edge e's fork at its lower endpoint). Diner 6's left
  // fork is gone forever: only the timeout override can let 6 eat.
  FlatConfig config = shard_config(4);
  config.crashes = {{5, 0}};
  const FlatResult with_detector = run_flat(config);
  EXPECT_TRUE(ever_ate(with_detector, 6))
      << "suspicion override never fired for the dead fork holder";

  // The control: detector off, same crash — diner 6 blocks forever on the
  // lost fork (the flat-engine reproduction of the v13 starvation finding,
  // and of why the wait-free transformation needs the detector at all).
  config.suspect_after = 0;
  const FlatResult without_detector = run_flat(config);
  EXPECT_FALSE(ever_ate(without_detector, 6))
      << "diner ate using a fork its dead neighbor took to the grave";
  EXPECT_TRUE(ever_ate(without_detector, 2))
      << "a diner with two live neighbors must keep eating either way";
}

// --- observability parity ---------------------------------------------------

TEST(ShardedFlat, RegistryMirrorsStatsAndPerfettoExportMatchesCounters) {
  obs::Registry registry;
  FlatConfig config = shard_config(3);
  config.n = 24;
  config.steps = 1500;
  config.crashes = {{5, 100}};
  config.metrics = &registry;
  const FlatResult result = run_flat(config);

  const obs::Snapshot snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counter_value("flat.steps"), result.stats.steps);
  EXPECT_EQ(snapshot.counter_value("flat.sent"), result.stats.messages_sent);
  EXPECT_EQ(snapshot.counter_value("flat.delivered"),
            result.stats.messages_delivered);
  EXPECT_EQ(snapshot.counter_value("flat.dropped"),
            result.stats.messages_dropped);
  EXPECT_EQ(snapshot.counter_value("flat.meals"), result.stats.meals);
  EXPECT_EQ(snapshot.counter_value("flat.crashes"), result.stats.crashes);
  ASSERT_NE(snapshot.find_gauge("flat.shards"), nullptr);
  EXPECT_EQ(snapshot.find_gauge("flat.shards")->value, 3.0);

  // The merged event stream was replayed through a registry-bound Trace;
  // a Perfetto export of the same stream must agree with those counters
  // exactly, kind by kind.
  std::ostringstream out;
  obs::write_perfetto(result.events, out);
  const std::map<std::string, std::uint64_t> expected =
      obs::expected_counts_from(snapshot);
  ASSERT_FALSE(expected.empty());
  std::string why;
  EXPECT_TRUE(obs::validate_trace_json(out.str(), &expected, &why)) << why;
}

}  // namespace
}  // namespace wfd::sim
