// STM tests: obstruction freedom of the raw store, abort storms under
// contention, and the boosting of obstruction freedom to wait freedom via
// a dining-backed contention manager (the paper's Section 3 application).
#include <gtest/gtest.h>

#include <memory>

#include "detect/oracle.hpp"
#include "dining/instance.hpp"
#include "graph/conflict_graph.hpp"
#include "sim/engine.hpp"
#include "stm/stm.hpp"

namespace wfd::stm {
namespace {

constexpr sim::Port kStorePort = 5;
constexpr sim::Port kReplyPort = 6;
constexpr sim::Port kCmPort = 7;

/// Process 0 hosts the store; processes 1..n host one client each.
struct StmRig {
  sim::Engine engine;
  std::vector<sim::ComponentHost*> hosts;
  StmServer* server = nullptr;
  std::vector<std::shared_ptr<TxClient>> clients;
  std::vector<std::shared_ptr<detect::OracleEventuallyPerfect>> detectors;
  dining::BuiltInstance cm;

  StmRig(std::uint32_t n_clients, std::uint64_t seed, bool use_cm,
         std::uint32_t registers = 2, sim::Time step_work = 6)
      : engine(sim::EngineConfig{.seed = seed}) {
    const std::uint32_t n = n_clients + 1;
    for (sim::ProcessId p = 0; p < n; ++p) {
      auto host = std::make_unique<sim::ComponentHost>();
      hosts.push_back(host.get());
      engine.add_process(std::move(host));
    }
    auto server = std::make_shared<StmServer>(kStorePort, registers);
    this->server = server.get();
    hosts[0]->add_component(std::move(server), {kStorePort});

    if (use_cm) {
      // A wait-free <>WX dining service over the clients (clique: they all
      // share the same registers).
      for (sim::ProcessId p = 0; p < n; ++p) {
        auto oracle = std::make_shared<detect::OracleEventuallyPerfect>(
            engine, p, n, 25, std::vector<detect::MistakeWindow>{}, 0xFD);
        detectors.push_back(oracle);
        hosts[p]->add_component(oracle, {});
      }
      dining::DiningInstanceConfig config;
      config.port = kCmPort;
      config.tag = 9;
      for (std::uint32_t c = 0; c < n_clients; ++c) config.members.push_back(c + 1);
      config.graph = graph::make_clique(n_clients);
      std::vector<sim::ComponentHost*> client_hosts(hosts.begin() + 1,
                                                    hosts.end());
      std::vector<const detect::FailureDetector*> fds;
      for (std::uint32_t c = 0; c < n_clients; ++c) {
        fds.push_back(detectors[c + 1].get());
      }
      cm = dining::build_dining_instance(client_hosts, config, fds);
    }

    for (std::uint32_t c = 0; c < n_clients; ++c) {
      TxClientConfig config;
      config.server = 0;
      config.server_port = kStorePort;
      config.reply_port = kReplyPort;
      config.registers = {0, registers > 1 ? 1u : 0u};
      config.step_work = step_work;
      auto client = std::make_shared<TxClient>(
          config, use_cm ? cm.diners[c].get() : nullptr);
      clients.push_back(client);
      hosts[c + 1]->add_component(client, {kReplyPort});
    }
    engine.set_delay_model(std::make_unique<sim::UniformDelay>(1, 4));
  }
};

TEST(Stm, SingleClientIsObstructionFreeAndCommits) {
  StmRig rig(1, 51, /*use_cm=*/false);
  rig.engine.init();
  rig.engine.run(40000);
  EXPECT_GT(rig.clients[0]->commits(), 100u);
  EXPECT_EQ(rig.clients[0]->aborts(), 0u)
      << "a lone transaction must never abort";
}

TEST(Stm, ServerAppliesWritesAtomically) {
  StmRig rig(1, 52, /*use_cm=*/false);
  rig.engine.init();
  rig.engine.run(20000);
  // Both registers are bumped together by every committed transaction.
  EXPECT_EQ(rig.server->value(0), rig.server->value(1));
  // The last commit's response may still be in flight when the run stops.
  EXPECT_LE(rig.server->commits() - rig.clients[0]->commits(), 1u);
}

TEST(Stm, ContentionCausesAborts) {
  StmRig rig(4, 53, /*use_cm=*/false);
  rig.engine.init();
  rig.engine.run(80000);
  std::uint64_t aborts = 0;
  for (const auto& client : rig.clients) aborts += client->aborts();
  EXPECT_GT(aborts, 50u) << "overlapping transactions should abort often";
}

TEST(Stm, ContentionManagerEliminatesAbortsEventually) {
  StmRig with_cm(4, 54, /*use_cm=*/true);
  with_cm.engine.init();
  with_cm.engine.run(60000);
  // Measure the converged suffix only.
  std::uint64_t aborts_before = 0;
  for (const auto& client : with_cm.clients) aborts_before += client->aborts();
  with_cm.engine.run(60000);
  std::uint64_t aborts_after = 0, commits_tail = 0;
  for (const auto& client : with_cm.clients) aborts_after += client->aborts();
  for (const auto& client : with_cm.clients) commits_tail += client->commits();
  EXPECT_EQ(aborts_after, aborts_before)
      << "a converged contention manager serializes conflicting transactions";
  EXPECT_GT(commits_tail, 100u);
}

TEST(Stm, ContentionManagerBoostsWorstClientProgress) {
  StmRig raw(4, 55, /*use_cm=*/false);
  raw.engine.init();
  raw.engine.run(100000);
  StmRig managed(4, 55, /*use_cm=*/true);
  managed.engine.init();
  managed.engine.run(100000);

  std::uint64_t raw_worst_streak = 0;
  for (const auto& client : raw.clients) {
    raw_worst_streak =
        std::max(raw_worst_streak, client->max_consecutive_aborts());
  }
  std::uint64_t managed_worst_streak = 0;
  std::uint64_t managed_min_commits = ~0ull;
  for (const auto& client : managed.clients) {
    managed_worst_streak =
        std::max(managed_worst_streak, client->max_consecutive_aborts());
    managed_min_commits = std::min(managed_min_commits, client->commits());
  }
  EXPECT_GT(raw_worst_streak, managed_worst_streak)
      << "the manager should cap abort streaks";
  EXPECT_GT(managed_min_commits, 20u)
      << "every managed client makes progress (wait-freedom)";
}

TEST(Stm, ManagedClientsSurviveClientCrash) {
  StmRig rig(3, 56, /*use_cm=*/true);
  rig.engine.schedule_crash(1, 5000);  // client 0's process
  rig.engine.init();
  rig.engine.run(120000);
  EXPECT_GT(rig.clients[1]->commits(), 50u);
  EXPECT_GT(rig.clients[2]->commits(), 50u);
}

TEST(Stm, AbortClearsServerContext) {
  StmRig rig(2, 57, /*use_cm=*/false);
  rig.engine.init();
  rig.engine.run(50000);
  std::uint64_t commits = 0;
  for (const auto& client : rig.clients) commits += client->commits();
  EXPECT_LE(rig.server->commits() - commits, rig.clients.size())
      << "counters may differ only by in-flight responses";
  // Register values track commit activity (each commit bumps both).
  EXPECT_GT(rig.server->value(0), 0u);
}

}  // namespace
}  // namespace wfd::stm
