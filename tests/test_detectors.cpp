// Failure-detector tests: the native heartbeat <>P under partial synchrony,
// the scripted oracles as legal class instances, and the property monitors
// that grade them.
#include <gtest/gtest.h>

#include <memory>

#include "detect/heartbeat_detector.hpp"
#include "detect/oracle.hpp"
#include "detect/properties.hpp"
#include "sim/component.hpp"
#include "sim/engine.hpp"

namespace wfd::detect {
namespace {

using sim::ComponentHost;
using sim::Engine;
using sim::EngineConfig;
using sim::kNever;
using sim::ProcessId;
using sim::Time;

/// Build n hosts each carrying one heartbeat detector on port 100.
struct HeartbeatRig {
  Engine engine;
  std::vector<std::shared_ptr<HeartbeatDetector>> detectors;

  explicit HeartbeatRig(std::uint32_t n, std::uint64_t seed, Time gst,
                        Time delta)
      : engine(EngineConfig{.seed = seed}) {
    for (ProcessId p = 0; p < n; ++p) {
      auto detector = std::make_shared<HeartbeatDetector>(
          p, n, HeartbeatConfig{.port = 100});
      detectors.push_back(detector);
      auto host = std::make_unique<ComponentHost>();
      host->add_component(detector, {100});
      engine.add_process(std::move(host));
    }
    engine.set_delay_model(
        std::make_unique<sim::PartialSynchronyDelay>(gst, delta, gst));
    engine.set_scheduler(std::make_unique<sim::RoundRobinScheduler>());
  }
};

TEST(HeartbeatDetector, StrongCompleteness) {
  HeartbeatRig rig(3, 1, /*gst=*/200, /*delta=*/3);
  rig.engine.schedule_crash(2, 600);
  rig.engine.init();
  rig.engine.run(20000);
  EXPECT_TRUE(rig.detectors[0]->suspects(2));
  EXPECT_TRUE(rig.detectors[1]->suspects(2));
  // and permanently: run on, still suspected
  rig.engine.run(5000);
  EXPECT_TRUE(rig.detectors[0]->suspects(2));
  EXPECT_TRUE(rig.detectors[1]->suspects(2));
}

TEST(HeartbeatDetector, EventualStrongAccuracy) {
  HeartbeatRig rig(3, 2, /*gst=*/400, /*delta=*/3);
  rig.engine.init();
  rig.engine.run(30000);
  // Converged: no correct process suspected.
  for (ProcessId p = 0; p < 3; ++p) {
    for (ProcessId q = 0; q < 3; ++q) {
      if (p != q) {
        EXPECT_FALSE(rig.detectors[p]->suspects(q));
      }
    }
  }
  // And stays that way (post-GST timeouts only grow).
  const auto flips_before = rig.detectors[0]->transition_count();
  rig.engine.run(10000);
  EXPECT_EQ(rig.detectors[0]->transition_count(), flips_before);
}

TEST(HeartbeatDetector, MistakesPossibleBeforeGst) {
  // Long pre-GST chaos with tiny initial timeout: some false suspicion is
  // essentially certain, and must later be withdrawn.
  Engine engine(EngineConfig{.seed = 5});
  std::vector<std::shared_ptr<HeartbeatDetector>> detectors;
  for (ProcessId p = 0; p < 2; ++p) {
    auto det = std::make_shared<HeartbeatDetector>(
        p, 2,
        HeartbeatConfig{.port = 100,
                        .heartbeat_every = 4,
                        .initial_timeout = 2,
                        .timeout_increment = 4});
    detectors.push_back(det);
    auto host = std::make_unique<ComponentHost>();
    host->add_component(det, {100});
    engine.add_process(std::move(host));
  }
  engine.set_delay_model(
      std::make_unique<sim::PartialSynchronyDelay>(2000, 3, 500));
  engine.set_scheduler(std::make_unique<sim::RoundRobinScheduler>());
  engine.init();
  engine.run(40000);
  EXPECT_GT(detectors[0]->transition_count() + detectors[1]->transition_count(),
            0u)
      << "expected at least one pre-GST mistake/withdrawal cycle";
  EXPECT_FALSE(detectors[0]->suspects(1));
  EXPECT_FALSE(detectors[1]->suspects(0));
}

TEST(HeartbeatDetector, AdaptiveTimeoutGrowsOnMistake) {
  Engine engine(EngineConfig{.seed = 6});
  auto det = std::make_shared<HeartbeatDetector>(
      0, 2,
      HeartbeatConfig{.port = 100, .initial_timeout = 2, .timeout_increment = 8});
  auto host0 = std::make_unique<ComponentHost>();
  host0->add_component(det, {100});
  auto det1 = std::make_shared<HeartbeatDetector>(1, 2,
                                                  HeartbeatConfig{.port = 100});
  auto host1 = std::make_unique<ComponentHost>();
  host1->add_component(det1, {100});
  engine.add_process(std::move(host0));
  engine.add_process(std::move(host1));
  engine.set_delay_model(std::make_unique<sim::UniformDelay>(10, 30));
  engine.set_scheduler(std::make_unique<sim::RoundRobinScheduler>());
  engine.init();
  engine.run(5000);
  EXPECT_GT(det->current_timeout(1), 2u);
}

TEST(OracleEventuallyPerfect, HonorsMistakeWindowsThenConverges) {
  Engine engine(EngineConfig{.seed = 7});
  std::vector<MistakeWindow> mistakes{{0, 1, 50, 150}};
  auto oracle = std::make_shared<OracleEventuallyPerfect>(engine, 0, 2,
                                                          /*lag=*/10, mistakes);
  auto host0 = std::make_unique<ComponentHost>();
  host0->add_component(oracle, {});
  engine.add_process(std::move(host0));
  engine.add_process(std::make_unique<ComponentHost>());
  engine.set_scheduler(std::make_unique<sim::RoundRobinScheduler>());
  engine.init();
  engine.run(80);  // inside window (time advances ~1/step)
  EXPECT_TRUE(oracle->suspects(1));
  engine.run(200);  // past window
  EXPECT_FALSE(oracle->suspects(1));
  EXPECT_EQ(oracle->convergence_bound(), 150u);
}

TEST(OracleEventuallyPerfect, SuspectsCrashedAfterLag) {
  Engine engine(EngineConfig{.seed = 8});
  auto oracle = std::make_shared<OracleEventuallyPerfect>(
      engine, 0, 2, /*lag=*/20, std::vector<MistakeWindow>{});
  auto host0 = std::make_unique<ComponentHost>();
  host0->add_component(oracle, {});
  engine.add_process(std::move(host0));
  engine.add_process(std::make_unique<ComponentHost>());
  engine.schedule_crash(1, 100);
  engine.init();
  engine.run(90);
  EXPECT_FALSE(oracle->suspects(1));
  engine.run(200);
  EXPECT_TRUE(oracle->suspects(1));
}

TEST(OraclePerfect, NeverSuspectsBeforeCrash) {
  Engine engine(EngineConfig{.seed = 9});
  auto oracle = std::make_shared<OraclePerfect>(engine, 0, 2, /*lag=*/5);
  auto host0 = std::make_unique<ComponentHost>();
  host0->add_component(oracle, {});
  engine.add_process(std::move(host0));
  engine.add_process(std::make_unique<ComponentHost>());
  engine.schedule_crash(1, 500);
  engine.init();
  for (int i = 0; i < 499; ++i) {
    engine.step();
    ASSERT_FALSE(oracle->suspects(1)) << "t=" << engine.now();
  }
  engine.run(100);
  EXPECT_TRUE(oracle->suspects(1));
}

TEST(OracleTrusting, CertifiesOnlyRealCrashes) {
  Engine engine(EngineConfig{.seed = 10});
  auto oracle = std::make_shared<OracleTrusting>(engine, 0, 3, /*lag=*/10);
  auto host0 = std::make_unique<ComponentHost>();
  host0->add_component(oracle, {});
  engine.add_process(std::move(host0));
  engine.add_process(std::make_unique<ComponentHost>());
  engine.add_process(std::make_unique<ComponentHost>());
  engine.schedule_crash(1, 200);
  engine.init();
  engine.run(100);
  EXPECT_FALSE(oracle->suspects(1));
  EXPECT_FALSE(oracle->certainly_crashed(1));
  EXPECT_FALSE(oracle->certainly_crashed(2));
  engine.run(500);
  EXPECT_TRUE(oracle->suspects(1));
  EXPECT_TRUE(oracle->certainly_crashed(1));
  EXPECT_FALSE(oracle->certainly_crashed(2));
}

TEST(OracleStrong, ImmuneProcessNeverSuspected) {
  Engine engine(EngineConfig{.seed = 11});
  std::vector<MistakeWindow> mistakes{{0, 2, 10, 100000}};
  auto oracle =
      std::make_shared<OracleStrong>(engine, 0, 3, /*immune=*/1, 5, mistakes);
  auto host0 = std::make_unique<ComponentHost>();
  host0->add_component(oracle, {});
  engine.add_process(std::move(host0));
  engine.add_process(std::make_unique<ComponentHost>());
  engine.add_process(std::make_unique<ComponentHost>());
  engine.init();
  engine.run(1000);
  EXPECT_FALSE(oracle->suspects(1));
  EXPECT_TRUE(oracle->suspects(2));  // scripted (legal for S on non-immune)
}

TEST(DetectorHistory, GradesHeartbeatDetectorAsEventuallyPerfect) {
  HeartbeatRig rig(3, 12, /*gst=*/300, /*delta=*/3);
  DetectorHistory history(/*tag=*/0);
  rig.engine.trace().subscribe(
      [&](const sim::Event& e) { history.on_event(e); });
  for (ProcessId p = 0; p < 3; ++p) {
    for (ProcessId q = 0; q < 3; ++q) {
      if (p != q) history.set_initial(p, q, false);
    }
  }
  rig.engine.schedule_crash(2, 1000);
  rig.engine.init();
  rig.engine.run(30000);
  const Verdict completeness = history.strong_completeness(rig.engine);
  const Verdict accuracy = history.eventual_strong_accuracy(rig.engine);
  EXPECT_TRUE(completeness.holds) << completeness.detail;
  EXPECT_TRUE(accuracy.holds) << accuracy.detail;
  EXPECT_GE(completeness.convergence, 1000u);
}

TEST(DetectorHistory, FlagsPermanentWrongSuspicion) {
  Engine engine(EngineConfig{.seed = 13});
  // A mistake window that never closes within the run: accuracy must fail.
  std::vector<MistakeWindow> mistakes{{0, 1, 10, 1000000}};
  auto oracle = std::make_shared<OracleEventuallyPerfect>(engine, 0, 2, 5,
                                                          mistakes);
  auto host0 = std::make_unique<ComponentHost>();
  host0->add_component(oracle, {});
  engine.add_process(std::move(host0));
  engine.add_process(std::make_unique<ComponentHost>());
  DetectorHistory history(0);
  engine.trace().subscribe([&](const sim::Event& e) { history.on_event(e); });
  history.set_initial(0, 1, false);
  engine.init();
  engine.run(2000);
  EXPECT_FALSE(history.eventual_strong_accuracy(engine).holds);
}

TEST(DetectorHistory, TrustingAccuracyFlagsWrongDetrust) {
  Engine engine(EngineConfig{.seed = 14});
  // An <>P-style oracle that wrongly suspects a live process violates T's
  // trusting accuracy (after having trusted it first).
  std::vector<MistakeWindow> mistakes{{0, 1, 100, 200}};
  auto oracle = std::make_shared<OracleEventuallyPerfect>(engine, 0, 2, 5,
                                                          mistakes);
  auto host0 = std::make_unique<ComponentHost>();
  host0->add_component(oracle, {});
  engine.add_process(std::move(host0));
  engine.add_process(std::make_unique<ComponentHost>());
  DetectorHistory history(0);
  engine.trace().subscribe([&](const sim::Event& e) { history.on_event(e); });
  history.set_initial(0, 1, false);
  engine.init();
  engine.run(2000);
  EXPECT_FALSE(history.trusting_accuracy(engine).holds);
}

TEST(DetectorHistory, TrustingOracleSatisfiesTrustingAccuracy) {
  Engine engine(EngineConfig{.seed = 15});
  auto oracle = std::make_shared<OracleTrusting>(engine, 0, 3, /*lag=*/10);
  auto host0 = std::make_unique<ComponentHost>();
  host0->add_component(oracle, {});
  engine.add_process(std::move(host0));
  engine.add_process(std::make_unique<ComponentHost>());
  engine.add_process(std::make_unique<ComponentHost>());
  engine.schedule_crash(2, 300);
  DetectorHistory history(0);
  engine.trace().subscribe([&](const sim::Event& e) { history.on_event(e); });
  history.set_initial(0, 1, true);  // T starts by trusting nobody? here: at 0
  history.set_initial(0, 2, true);
  engine.init();
  engine.run(5000);
  const Verdict verdict = history.trusting_accuracy(engine);
  EXPECT_TRUE(verdict.holds) << verdict.detail;
}

TEST(DetectorHistory, PerpetualWeakAccuracy) {
  Engine engine(EngineConfig{.seed = 16});
  std::vector<MistakeWindow> mistakes{{0, 2, 10, 50}};
  auto oracle =
      std::make_shared<OracleStrong>(engine, 0, 3, /*immune=*/1, 5, mistakes);
  auto host0 = std::make_unique<ComponentHost>();
  host0->add_component(oracle, {});
  engine.add_process(std::move(host0));
  engine.add_process(std::make_unique<ComponentHost>());
  engine.add_process(std::make_unique<ComponentHost>());
  DetectorHistory history(0);
  engine.trace().subscribe([&](const sim::Event& e) { history.on_event(e); });
  history.set_initial(0, 1, false);
  history.set_initial(0, 2, false);
  engine.init();
  engine.run(500);
  EXPECT_TRUE(history.perpetual_weak_accuracy(engine).holds);
}

TEST(DetectorHistory, SuspicionEpisodeCounting) {
  DetectorHistory history(0);
  history.set_initial(0, 1, true);
  sim::Event trust{10, sim::EventKind::kDetectorChange, 0, 1, 0, 0};
  sim::Event suspect{20, sim::EventKind::kDetectorChange, 0, 1, 1, 0};
  history.on_event(trust);
  history.on_event(suspect);
  sim::Event trust2 = trust;
  trust2.time = 30;
  history.on_event(trust2);
  EXPECT_EQ(history.suspicion_episodes(0, 1), 2u);
  EXPECT_FALSE(history.currently_suspects(0, 1));
  EXPECT_EQ(history.last_flip(0, 1), 30u);
}

}  // namespace
}  // namespace wfd::detect
