// Property test for the calendar transit queue: long randomized
// interleavings of push / drain / defer — including pushes issued from
// inside the consume callback, the engine's handler-sends-during-delivery
// pattern — cross-checked step by step against a naive reference model
// built from std::priority_queue plus a deferred FIFO. The structural
// tests in test_transit_queue.cpp pin individual behaviors; this one
// exercises all of them at once under a common random schedule, which is
// where band-interaction bugs (deferred vs overflow vs re-entrant pushes)
// would live.
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <queue>
#include <vector>

#include "sim/rng.hpp"
#include "sim/transit_queue.hpp"

namespace wfd::sim {
namespace {

struct HeapItem {
  Time deliver_at = 0;
  std::uint64_t seq = 0;
  bool operator>(const HeapItem& other) const {
    if (deliver_at != other.deliver_at) return deliver_at > other.deliver_at;
    return seq > other.seq;
  }
};

/// The naive model: a min-heap by (deliver_at, seq) for pending items and a
/// FIFO for items the consumer deferred, retried ahead of the heap on the
/// next drain — exactly the contract CalendarQueue documents.
struct ReferenceModel {
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  std::deque<HeapItem> deferred;

  std::size_t size() const { return heap.size() + deferred.size(); }
};

Message make_msg(std::uint64_t seq) {
  Message msg;
  msg.src = static_cast<ProcessId>(seq % 5);
  msg.dst = 0;
  msg.seq = seq;
  return msg;
}

/// Shared deterministic policies, keyed only on values both models see, so
/// the two executions make identical choices independent of representation.
bool should_defer(std::uint64_t seq, std::uint64_t round) {
  return (seq + round) % 3 == 0;  // retried items pass on a later round
}
bool spawns_on_consume(std::uint64_t seq) { return seq % 5 == 2; }
Time spawn_delay(std::uint64_t seq) {
  // Mostly near-future (calendar band); every 4th spawn far enough to land
  // in the overflow band even mid-drain.
  return seq % 4 == 3 ? 700 + (seq % 90) : 1 + (seq % 37);
}

TEST(CalendarQueueProperty, FullContractUnderRandomInterleavings) {
  for (const std::uint64_t master_seed : {11ull, 12ull, 13ull}) {
    Rng rng(master_seed);
    CalendarQueue queue;
    ReferenceModel model;
    std::uint64_t queue_seq = 0;  // each execution assigns its own seqs
    std::uint64_t model_seq = 0;
    std::uint64_t round = 0;
    std::size_t delivered = 0;
    std::size_t spawned = 0;
    Time now = 0;

    const auto push_queue = [&](Time at) { queue.push(at) = make_msg(queue_seq++); };
    const auto push_model = [&](Time at) { model.heap.push({at, model_seq++}); };

    for (int step = 0; step < 3000; ++step) {
      const std::uint64_t jump = rng.below(100);
      now += jump < 75 ? 1 : (jump < 95 ? rng.range(2, 50) : rng.range(300, 1400));

      for (std::uint64_t s = rng.below(5); s > 0; --s) {
        const Time delay =
            rng.chance(0.12) ? rng.range(256, 4000) : rng.range(1, 48);
        push_queue(now + delay);
        push_model(now + delay);
      }
      if (!rng.chance(0.8)) continue;
      ++round;

      // Calendar queue: one drain with deferral and re-entrant spawns.
      std::vector<std::uint64_t> got;
      queue.drain_due(now, [&](const InTransit& item) {
        if (should_defer(item.msg.seq, round)) return false;
        got.push_back(item.msg.seq);
        if (spawns_on_consume(item.msg.seq)) {
          push_queue(now + spawn_delay(item.msg.seq));
        }
        return true;
      });

      // Reference: deferred FIFO first (re-deferring in place), then due
      // heap items in (deliver_at, seq) order, same consume policy.
      std::vector<std::uint64_t> expected;
      const auto consume_ref = [&](const HeapItem& item) {
        if (should_defer(item.seq, round)) {
          model.deferred.push_back(item);
          return;
        }
        expected.push_back(item.seq);
        if (spawns_on_consume(item.seq)) {
          push_model(now + spawn_delay(item.seq));
        }
      };
      for (std::size_t pending = model.deferred.size(); pending > 0; --pending) {
        const HeapItem item = model.deferred.front();
        model.deferred.pop_front();
        consume_ref(item);
      }
      while (!model.heap.empty() && model.heap.top().deliver_at <= now) {
        const HeapItem item = model.heap.top();
        model.heap.pop();
        consume_ref(item);
      }

      ASSERT_EQ(got, expected) << "divergence at tick " << now << " (seed "
                               << master_seed << ", round " << round << ")";
      ASSERT_EQ(queue.size(), model.size());
      delivered += got.size();
      for (const std::uint64_t seq : got) {
        if (spawns_on_consume(seq)) ++spawned;
      }
    }

    // Final drains with deferral off flush both models completely (two
    // passes: the last drain's spawns may still be pending).
    for (int flush = 0; flush < 2; ++flush) {
      now += 10000;
      std::vector<std::uint64_t> got;
      queue.drain_due(now, [&](const InTransit& item) {
        got.push_back(item.msg.seq);
        return true;
      });
      std::vector<std::uint64_t> expected;
      while (!model.deferred.empty()) {
        expected.push_back(model.deferred.front().seq);
        model.deferred.pop_front();
      }
      while (!model.heap.empty() && model.heap.top().deliver_at <= now) {
        expected.push_back(model.heap.top().seq);
        model.heap.pop();
      }
      ASSERT_EQ(got, expected) << "final drain divergence (seed "
                               << master_seed << ")";
      delivered += got.size();
    }
    EXPECT_EQ(queue.size(), 0u);
    EXPECT_EQ(model.size(), 0u);

    // The schedule actually exercised every code path worth having: real
    // volume, real deferrals (seq streams identical => counts comparable),
    // and re-entrant spawns.
    EXPECT_GT(delivered, 2000u);
    EXPECT_GT(spawned, 100u);
    EXPECT_EQ(queue_seq, model_seq);
  }
}

}  // namespace
}  // namespace wfd::sim
