// The observability layer end to end: the metrics registry's single-writer
// shard discipline, the Perfetto trace_event exporter (including the
// exported-counts == registry-counters consistency invariant), the mc
// engine's metrics/span instrumentation (and that it never perturbs the
// exploration), campaign progress reporting, and a replay of every corpus
// .repro through the capture + export + validate path.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "fuzz/fuzzer.hpp"
#include "fuzz/oracles.hpp"
#include "harness/campaign.hpp"
#include "mc/gkk_model.hpp"
#include "obs/metrics.hpp"
#include "obs/perfetto.hpp"
#include "obs/progress.hpp"
#include "obs/span.hpp"
#include "sim/trace.hpp"

namespace wfd {
namespace {

// --- the registry ----------------------------------------------------------

TEST(Registry, CountersAccumulateAcrossLiveAndRetiredScopes) {
  obs::Registry registry;
  const obs::Registry::Id id = registry.counter("test.counter");
  {
    obs::Scope retired(registry);
    retired.add(id, 5);
  }  // retires: totals fold into the registry
  obs::Scope live(registry);
  live.add(id);
  live.add(id, 2);
  EXPECT_EQ(registry.snapshot().counter_value("test.counter"), 8u);
}

TEST(Registry, SameNameSameKindIsTheSameMetric) {
  obs::Registry registry;
  const obs::Registry::Id a = registry.counter("shared");
  const obs::Registry::Id b = registry.counter("shared");
  EXPECT_EQ(a, b);
  obs::Scope scope_a(registry);
  obs::Scope scope_b(registry);
  scope_a.add(a, 3);
  scope_b.add(b, 4);
  const obs::Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].value, 7u);
}

TEST(Registry, HistogramBucketsMeanAndPercentiles) {
  obs::Registry registry;
  const obs::Registry::Id id = registry.histogram("test.histo");
  obs::Scope scope(registry);
  scope.observe(id, 0);  // bucket 0
  scope.observe(id, 1);  // bucket 1: [1, 2)
  scope.observe(id, 3);  // bucket 2: [2, 4)
  scope.observe(id, 100);
  const obs::Snapshot snap = registry.snapshot();
  const obs::Snapshot::Histogram* h = snap.find_histogram("test.histo");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 4u);
  EXPECT_EQ(h->sum, 104u);
  EXPECT_EQ(h->buckets[0], 1u);
  EXPECT_EQ(h->buckets[1], 1u);
  EXPECT_EQ(h->buckets[2], 1u);
  EXPECT_DOUBLE_EQ(h->mean(), 26.0);
  EXPECT_EQ(h->percentile(0.0), 0u);
  // p99 lands in 100's bucket ([64, 128) -> upper bound 127).
  EXPECT_EQ(h->percentile(0.99), 127u);
  EXPECT_LE(h->percentile(0.5), h->percentile(0.99));
}

TEST(Registry, GaugeLastWriteWins) {
  obs::Registry registry;
  const obs::Registry::Id id = registry.gauge("test.gauge");
  registry.set_gauge(id, 1.5);
  registry.set_gauge(id, 42.25);
  const obs::Snapshot snap = registry.snapshot();
  const obs::Snapshot::Gauge* g = snap.find_gauge("test.gauge");
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(g->value, 42.25);
}

TEST(Registry, ConcurrentWritersOneScopeEach) {
  obs::Registry registry;
  const obs::Registry::Id id = registry.counter("test.parallel");
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&registry, id] {
      obs::Scope scope(registry);
      for (std::uint64_t i = 0; i < kPerThread; ++i) scope.add(id);
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(registry.snapshot().counter_value("test.parallel"),
            kThreads * kPerThread);
}

TEST(Registry, CellBudgetExhaustionThrows) {
  obs::Registry registry;
  EXPECT_THROW(
      {
        for (int i = 0; i < 100; ++i) {
          registry.histogram("histo." + std::to_string(i));
        }
      },
      std::length_error);
}

TEST(Registry, SnapshotToJsonIsWellFormed) {
  obs::Registry registry;
  const obs::Registry::Id c = registry.counter("c");
  const obs::Registry::Id h = registry.histogram("h");
  registry.set_gauge(registry.gauge("g"), 0.5);
  obs::Scope scope(registry);
  scope.add(c, 7);
  scope.observe(h, 16);
  const std::string json = registry.snapshot().to_json();
  fuzz::Json doc;
  std::string error;
  ASSERT_TRUE(fuzz::Json::parse(json, &doc, &error)) << error << ": " << json;
  EXPECT_EQ(doc.find("c")->as_u64(), 7u);
  EXPECT_DOUBLE_EQ(doc.find("g")->as_double(), 0.5);
  const fuzz::Json* histo = doc.find("h");
  ASSERT_NE(histo, nullptr);
  EXPECT_EQ(histo->find("count")->as_u64(), 1u);
  EXPECT_EQ(histo->find("sum")->as_u64(), 16u);
}

// --- the Perfetto exporter -------------------------------------------------

std::vector<sim::Event> synthetic_events() {
  using sim::EventKind;
  return {
      {1, EventKind::kStep, 0, 0, 0, 0},
      {2, EventKind::kSend, 0, 1, 7, 3},
      {4, EventKind::kDeliver, 1, 0, 7, 3},
      // diner on pid 1, tag 9: thinking(0) -> hungry(1) at t=5,
      // hungry -> eating(2) at t=8.
      {5, EventKind::kDinerTransition, 1, 9, 0, 1},
      {8, EventKind::kDinerTransition, 1, 9, 1, 2},
      {9, EventKind::kCrash, 2, 0, 0, 0},
  };
}

TEST(Perfetto, OneJsonEventPerInputEventAndCountsMatch) {
  std::ostringstream out;
  const obs::ExportStats stats = obs::write_perfetto(synthetic_events(), out);
  EXPECT_EQ(stats.emitted, 6u);
  EXPECT_EQ(stats.filtered, 0u);
  EXPECT_EQ(stats.by_kind.at("diner"), 2u);
  std::map<std::string, std::uint64_t> expected = {
      {"step", 1}, {"send", 1}, {"deliver", 1}, {"diner", 2}, {"crash", 1}};
  std::string why;
  EXPECT_TRUE(obs::validate_trace_json(out.str(), &expected, &why)) << why;
}

TEST(Perfetto, CountMismatchIsDetected) {
  std::ostringstream out;
  obs::write_perfetto(synthetic_events(), out);
  std::map<std::string, std::uint64_t> wrong = {{"step", 2}};
  std::string why;
  EXPECT_FALSE(obs::validate_trace_json(out.str(), &wrong, &why));
  EXPECT_NE(why.find("count mismatch"), std::string::npos) << why;
}

TEST(Perfetto, FilterSelectsByKindPidAndWindow) {
  const std::vector<sim::Event> events = synthetic_events();
  {
    obs::TraceEventFilter filter;
    filter.kinds = {static_cast<std::uint8_t>(sim::EventKind::kDinerTransition)};
    std::ostringstream out;
    const obs::ExportStats stats = obs::write_perfetto(events, out, filter);
    EXPECT_EQ(stats.emitted, 2u);
    EXPECT_EQ(stats.filtered, 4u);
    std::string why;
    EXPECT_TRUE(obs::validate_trace_json(out.str(), nullptr, &why)) << why;
  }
  {
    obs::TraceEventFilter filter;
    filter.pids = {0};
    std::ostringstream out;
    EXPECT_EQ(obs::write_perfetto(events, out, filter).emitted, 2u);
  }
  {
    obs::TraceEventFilter filter;
    filter.from = 4;
    filter.until = 8;
    std::ostringstream out;
    EXPECT_EQ(obs::write_perfetto(events, out, filter).emitted, 3u);
  }
  EXPECT_TRUE(obs::TraceEventFilter{}.pass_all());
}

TEST(Perfetto, SpanLogExportsAsCompleteEvents) {
  obs::SpanLog log;
  log.record("level 0", 0, 0.0, 1.5, 10);
  log.record("level 1", 0, 1.5, 2.0, 30);
  log.record("analyze", 0, 3.5, 0.5, 40);
  std::ostringstream out;
  const obs::ExportStats stats = obs::write_perfetto_spans(log, out);
  EXPECT_EQ(stats.emitted, 3u);
  std::string why;
  EXPECT_TRUE(obs::validate_trace_json(out.str(), nullptr, &why)) << why;
}

TEST(Perfetto, ExpectedCountsPulledFromSnapshot) {
  obs::Registry registry;
  obs::Scope scope(registry);
  scope.add(registry.counter("sim.events.step"), 11);
  scope.add(registry.counter("sim.events.diner"), 3);
  scope.add(registry.counter("unrelated.counter"), 5);
  const std::map<std::string, std::uint64_t> counts =
      obs::expected_counts_from(registry.snapshot());
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts.at("step"), 11u);
  EXPECT_EQ(counts.at("diner"), 3u);
}

// --- capture + export end to end (the acceptance invariant) ----------------

// A captured run's exported document must hold exactly as many events per
// kind as the metrics registry counted during the same run.
TEST(ObsEndToEnd, ExportCountsEqualRegistryCounters) {
  fuzz::FuzzConfig config;
  config.target = fuzz::TargetKind::kDining;
  config.n = 5;
  config.seed = 424242;
  config.steps = 20000;

  obs::Registry registry;
  fuzz::RunCapture capture;
  capture.metrics = &registry;
  fuzz::run_config(config, capture);
  ASSERT_FALSE(capture.events.empty());
  ASSERT_EQ(capture.truncated, 0u);

  std::ostringstream out;
  obs::write_perfetto(capture.events, out);
  std::map<std::string, std::uint64_t> expected =
      obs::expected_counts_from(registry.snapshot());
  ASSERT_FALSE(expected.empty());
  std::string why;
  EXPECT_TRUE(obs::validate_trace_json(out.str(), &expected, &why)) << why;
}

// Capturing must never change the run itself.
TEST(ObsEndToEnd, CaptureDoesNotPerturbTheRun) {
  const fuzz::FuzzConfig config = fuzz::sample_config(3, 1, {});
  const fuzz::RunResult plain = fuzz::run_config(config);
  obs::Registry registry;
  fuzz::RunCapture capture;
  capture.metrics = &registry;
  const fuzz::RunResult captured = fuzz::run_config(config, capture);
  EXPECT_EQ(plain.signature, captured.signature);
  EXPECT_EQ(plain.stats.steps, captured.stats.steps);
  EXPECT_EQ(plain.stats.messages_sent, captured.stats.messages_sent);
  EXPECT_EQ(plain.failures.size(), captured.failures.size());
  // And the engine's own counters agree with the graded stats.
  const obs::Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter_value("sim.steps"), captured.stats.steps);
  EXPECT_EQ(snap.counter_value("sim.sent"), captured.stats.messages_sent);
  EXPECT_EQ(snap.counter_value("sim.delivered"),
            captured.stats.messages_delivered);
}

// Replay every corpus case through the capture + export + validate path —
// the wfd_trace export pipeline over the checked-in regression configs.
TEST(ObsEndToEnd, CorpusReplaysExportValidTraces) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(WFD_CORPUS_DIR)) {
    if (entry.path().extension() == ".repro") {
      files.push_back(entry.path().string());
    }
  }
  ASSERT_FALSE(files.empty());
  for (const std::string& file : files) {
    fuzz::ReproCase repro;
    std::string error;
    ASSERT_TRUE(fuzz::load_repro_file(file, &repro, &error))
        << file << ": " << error;
    obs::Registry registry;
    fuzz::RunCapture capture;
    capture.metrics = &registry;
    fuzz::run_config(repro.config, capture);
    ASSERT_EQ(capture.truncated, 0u) << file;
    std::ostringstream out;
    const obs::ExportStats stats = obs::write_perfetto(capture.events, out);
    EXPECT_EQ(stats.emitted, capture.events.size()) << file;
    std::map<std::string, std::uint64_t> expected =
        obs::expected_counts_from(registry.snapshot());
    std::string why;
    EXPECT_TRUE(obs::validate_trace_json(out.str(), &expected, &why))
        << file << ": " << why;
  }
}

// --- the mc engine's instrumentation ---------------------------------------

TEST(McObs, CountersMatchResultAndSpansCoverEveryLevel) {
  obs::Registry registry;
  obs::SpanLog spans;
  mc::CheckOptions options;
  options.threads = 2;
  options.metrics = &registry;
  options.spans = &spans;
  const mc::CheckResult result =
      mc::check_gkk(mc::GkkBoxSemantics::kLockout, options);
  ASSERT_TRUE(result.ok()) << result.counterexample;

  const obs::Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter_value("mc.states"), result.states);
  EXPECT_EQ(snap.counter_value("mc.transitions"), result.transitions);
  EXPECT_EQ(snap.counter_value("mc.levels"), result.depth + 1);
  const obs::Snapshot::Histogram* rate =
      snap.find_histogram("mc.level_states_per_sec");
  ASSERT_NE(rate, nullptr);
  EXPECT_EQ(rate->count, result.depth + 1);
  const obs::Snapshot::Histogram* barrier =
      snap.find_histogram("mc.barrier_wait_us");
  ASSERT_NE(barrier, nullptr);
  EXPECT_GT(barrier->count, 0u);
  const obs::Snapshot::Gauge* load = snap.find_gauge("mc.seen_load_pct");
  ASSERT_NE(load, nullptr);
  EXPECT_GT(load->value, 0.0);

  // One span per BFS level plus the analyze span, exportable as-is.
  ASSERT_EQ(spans.spans.size(), result.depth + 2);
  EXPECT_EQ(spans.spans.front().name, "level 0");
  EXPECT_EQ(spans.spans.back().name, "analyze");
  std::ostringstream out;
  obs::write_perfetto_spans(spans, out);
  std::string why;
  EXPECT_TRUE(obs::validate_trace_json(out.str(), nullptr, &why)) << why;
}

// The frontier gauges mirror CheckResult::frontier_peak_bytes /
// spilled_bytes exactly; a 1-byte budget forces the spill path so both are
// nonzero.
TEST(McObs, FrontierGaugesMatchResult) {
  const auto check_gauges = [](std::uint64_t budget) {
    obs::Registry registry;
    mc::CheckOptions options;
    options.threads = 2;
    options.metrics = &registry;
    options.frontier_budget_bytes = budget;
    const mc::CheckResult result =
        mc::check_gkk(mc::GkkBoxSemantics::kLockout, options);
    ASSERT_TRUE(result.ok()) << result.counterexample;
    const obs::Snapshot snap = registry.snapshot();
    const obs::Snapshot::Gauge* peak =
        snap.find_gauge("mc.frontier_peak_bytes");
    ASSERT_NE(peak, nullptr);
    EXPECT_EQ(peak->value, static_cast<double>(result.frontier_peak_bytes));
    const obs::Snapshot::Gauge* spilled = snap.find_gauge("mc.spilled_bytes");
    ASSERT_NE(spilled, nullptr);
    EXPECT_EQ(spilled->value, static_cast<double>(result.spilled_bytes));
    if (budget == 0) {
      // Unlimited: everything stays resident, nothing spills.
      EXPECT_GT(result.frontier_peak_bytes, 0u);
      EXPECT_EQ(result.spilled_bytes, 0u);
    } else {
      // A 1-byte budget spills every sealed segment (resident peak 0).
      EXPECT_GT(result.spilled_bytes, 0u);
    }
  };
  check_gauges(/*budget=*/0);
  check_gauges(/*budget=*/1);
}

TEST(McObs, InstrumentationNeverChangesTheExploration) {
  const mc::CheckResult plain = mc::check_gkk(mc::GkkBoxSemantics::kForkBased);
  obs::Registry registry;
  obs::SpanLog spans;
  mc::CheckOptions options;
  options.metrics = &registry;
  options.spans = &spans;
  const mc::CheckResult traced =
      mc::check_gkk(mc::GkkBoxSemantics::kForkBased, options);
  EXPECT_EQ(traced.states, plain.states);
  EXPECT_EQ(traced.transitions, plain.transitions);
  EXPECT_EQ(traced.depth, plain.depth);
  EXPECT_EQ(traced.verdict, plain.verdict);
  EXPECT_EQ(traced.counterexample, plain.counterexample);
}

// --- campaign progress -----------------------------------------------------

TEST(Progress, HarnessCampaignReportsCompletion) {
  std::vector<int> configs(17);
  std::vector<harness::CampaignProgress> seen;
  harness::ProgressOptions progress;
  progress.interval_ms = 1;
  progress.on_progress = [&](const harness::CampaignProgress& p) {
    seen.push_back(p);
  };
  const std::vector<int> results = harness::run_campaign(
      configs, [](int) { return 1; }, 2, progress);
  EXPECT_EQ(results.size(), 17u);
  ASSERT_FALSE(seen.empty());
  EXPECT_EQ(seen.back().completed, 17u);
  EXPECT_EQ(seen.back().total, 17u);
  for (std::size_t i = 1; i < seen.size(); ++i) {
    EXPECT_LE(seen[i - 1].completed, seen[i].completed);
  }
}

TEST(Progress, FuzzCampaignCountsIntoTheRegistryAndReports) {
  obs::Registry registry;
  std::vector<std::uint64_t> completions;
  fuzz::CampaignOptions options;
  options.master_seed = 11;
  options.runs = 4;
  options.threads = 2;
  options.shrink = false;
  options.metrics = &registry;
  options.on_progress = [&](std::uint64_t completed, std::uint64_t total,
                            std::uint64_t) {
    EXPECT_EQ(total, 4u);
    completions.push_back(completed);
  };
  const fuzz::CampaignResult result = fuzz::run_fuzz_campaign(options);
  ASSERT_FALSE(completions.empty());
  EXPECT_EQ(completions.back(), result.stats.executed);
  const obs::Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter_value("fuzz.runs"), result.stats.executed);
  EXPECT_EQ(snap.counter_value("fuzz.failing"), result.stats.failing);
  EXPECT_EQ(snap.counter_value("fuzz.novel"), result.stats.novel);
  EXPECT_EQ(snap.counter_value("fuzz.shrink_runs"), result.stats.shrink_runs);
}

TEST(Progress, HeartbeatLineShape) {
  EXPECT_EQ(obs::heartbeat_line("fuzz", 3, 12, 250),
            "fuzz: 3/12 (25%), 250ms elapsed");
  EXPECT_EQ(obs::heartbeat_line("sweep", 9, 0, 40),
            "sweep: 9, 40ms elapsed");
}

TEST(Progress, JsonObjectBuildsOrderedNdjsonRecords) {
  obs::JsonObject record;
  record.field("type", "progress")
      .field("completed", std::uint64_t{3})
      .field("ratio", 0.5)
      .field("done", false)
      .raw("metrics", "{\"x\":1}");
  const std::string line = record.str();
  fuzz::Json doc;
  std::string error;
  ASSERT_TRUE(fuzz::Json::parse(line, &doc, &error)) << error << ": " << line;
  EXPECT_EQ(doc.find("type")->str, "progress");
  EXPECT_EQ(doc.find("completed")->as_u64(), 3u);
  EXPECT_EQ(doc.find("metrics")->find("x")->as_u64(), 1u);
  EXPECT_EQ(obs::JsonObject{}.str(), "{}");
  EXPECT_EQ(obs::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

}  // namespace
}  // namespace wfd
