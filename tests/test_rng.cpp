// Unit tests for the deterministic RNG: reproducibility, distribution
// sanity, and bound correctness — determinism of every experiment rests on
// this class.
#include <gtest/gtest.h>

#include <array>
#include <set>
#include <vector>

#include "sim/rng.hpp"

namespace wfd::sim {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  std::array<std::uint64_t, 16> first{};
  for (auto& x : first) x = a.next();
  a.reseed(7);
  for (auto x : first) EXPECT_EQ(x, a.next());
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 500; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t x = rng.range(5, 8);
    EXPECT_GE(x, 5u);
    EXPECT_LE(x, 8u);
    saw_lo |= (x == 5);
    saw_hi |= (x == 8);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, GeometricRespectsCap) {
  Rng rng(19);
  for (int i = 0; i < 2000; ++i) EXPECT_LE(rng.geometric(0.01, 5), 5u);
}

TEST(Rng, GeometricMeanApproximatelyCorrect) {
  Rng rng(23);
  double sum = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    sum += static_cast<double>(rng.geometric(0.5, 1000));
  }
  EXPECT_NEAR(sum / trials, 1.0, 0.1);  // mean (1-p)/p = 1
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> items{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  rng.shuffle(std::span<int>(items));
  std::set<int> unique(items.begin(), items.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SplitMixIsDeterministic) {
  std::uint64_t s1 = 99, s2 = 99;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace wfd::sim
