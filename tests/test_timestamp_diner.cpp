// Tests for the timestamp (Ricart-Agrawala-style) wait-free <>WX dining
// algorithm — the fork-free design point. Same property battery as the
// hygienic algorithm: exclusion, wait-freedom, crash tolerance, mistake
// confinement; plus a parameterized sweep.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "dining/timestamp_diner.hpp"
#include "graph/conflict_graph.hpp"
#include "harness/rig.hpp"

namespace wfd::dining {
namespace {

using harness::Rig;
using harness::RigOptions;

BuiltTimestampInstance make_instance(Rig& rig, graph::ConflictGraph graph) {
  DiningInstanceConfig config;
  config.port = 10;
  config.tag = 1;
  for (sim::ProcessId p = 0; p < rig.hosts.size(); ++p) {
    config.members.push_back(p);
  }
  config.graph = std::move(graph);
  std::vector<const detect::FailureDetector*> fds;
  for (const auto& d : rig.detectors) fds.push_back(d.get());
  return build_timestamp_instance(rig.hosts, config, fds);
}

TEST(TimestampDiner, PerpetualExclusionWithoutMistakes) {
  Rig rig(RigOptions{.seed = 91, .n = 5});
  auto instance = make_instance(rig, graph::make_ring(5));
  DiningMonitor monitor(rig.engine, instance.config);
  DiningMonitor::attach(rig.engine, monitor);
  std::vector<std::shared_ptr<DinerClient>> clients;
  for (std::uint32_t i = 0; i < 5; ++i) {
    auto client = std::make_shared<DinerClient>(*instance.diners[i],
                                                ClientConfig{});
    rig.hosts[i]->add_component(client, {});
    clients.push_back(client);
  }
  rig.engine.init();
  rig.engine.run(60000);
  EXPECT_TRUE(monitor.perpetual_exclusion());
  EXPECT_GT(monitor.total_meals(), 100u);
}

TEST(TimestampDiner, SurvivesCrashes) {
  Rig rig(RigOptions{.seed = 92, .n = 4, .detector_lag = 30});
  auto instance = make_instance(rig, graph::make_clique(4));
  std::vector<std::shared_ptr<DinerClient>> clients;
  for (std::uint32_t i = 0; i < 4; ++i) {
    auto client = std::make_shared<DinerClient>(*instance.diners[i],
                                                ClientConfig{});
    rig.hosts[i]->add_component(client, {});
    clients.push_back(client);
  }
  rig.engine.schedule_crash(0, 1000);
  rig.engine.schedule_crash(1, 2000);
  DiningMonitor monitor(rig.engine, instance.config);
  DiningMonitor::attach(rig.engine, monitor);
  rig.engine.init();
  rig.engine.run(100000);
  std::string detail;
  EXPECT_TRUE(monitor.wait_free(rig.engine.now(), 25000, &detail)) << detail;
  EXPECT_GT(instance.diners[2]->meals(), 50u);
  EXPECT_GT(instance.diners[3]->meals(), 50u);
}

TEST(TimestampDiner, MistakesAreConfined) {
  RigOptions options{.seed = 93, .n = 2};
  options.mistakes = {{0, 1, 400, 2200}};
  Rig rig(options);
  auto instance = make_instance(rig, graph::make_pair());
  std::vector<std::shared_ptr<DinerClient>> clients;
  for (std::uint32_t i = 0; i < 2; ++i) {
    auto client = std::make_shared<DinerClient>(
        *instance.diners[i],
        ClientConfig{.think_min = 1, .think_max = 2, .eat_min = 4,
                     .eat_max = 9});
    rig.hosts[i]->add_component(client, {});
    clients.push_back(client);
  }
  DiningMonitor monitor(rig.engine, instance.config);
  DiningMonitor::attach(rig.engine, monitor);
  rig.engine.init();
  rig.engine.run(100000);
  EXPECT_GT(monitor.exclusion_violations(), 0u)
      << "the waiver should fire during the mistake window";
  EXPECT_EQ(monitor.violations_since(4000), 0u);
}

TEST(TimestampDiner, NoForkStateMeansCleanPostCrashEdges) {
  // After a neighbor dies there is no fork to lose: the survivor's meals
  // continue purely via suspicion waivers.
  Rig rig(RigOptions{.seed = 94, .n = 2, .detector_lag = 20});
  auto instance = make_instance(rig, graph::make_pair());
  auto client = std::make_shared<DinerClient>(*instance.diners[0],
                                              ClientConfig{});
  rig.hosts[0]->add_component(client, {});
  auto client1 = std::make_shared<DinerClient>(*instance.diners[1],
                                               ClientConfig{});
  rig.hosts[1]->add_component(client1, {});
  rig.engine.schedule_crash(1, 500);
  rig.engine.init();
  rig.engine.run(60000);
  EXPECT_GT(instance.diners[0]->meals(), 100u);
}

using SweepParam = std::tuple<std::uint32_t /*n*/, std::uint64_t /*seed*/,
                              std::uint32_t /*crashes*/>;

class TimestampSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(TimestampSweep, ExclusionAndWaitFreedom) {
  const auto [n, seed, crashes] = GetParam();
  RigOptions options{.seed = seed, .n = n, .detector_lag = 25};
  options.mistakes = {{0, 1, 300, 1200}};
  Rig rig(options);
  auto instance = make_instance(rig, graph::make_ring(n));
  std::vector<std::shared_ptr<DinerClient>> clients;
  for (std::uint32_t i = 0; i < n; ++i) {
    auto client = std::make_shared<DinerClient>(*instance.diners[i],
                                                ClientConfig{});
    rig.hosts[i]->add_component(client, {});
    clients.push_back(client);
  }
  for (std::uint32_t c = 0; c < crashes; ++c) {
    rig.engine.schedule_crash(n - 1 - c, 2000 + 1000 * c);
  }
  DiningMonitor monitor(rig.engine, instance.config);
  DiningMonitor::attach(rig.engine, monitor);
  rig.engine.init();
  rig.engine.run(100000);
  EXPECT_EQ(monitor.violations_since(rig.engine.now() - 60000), 0u);
  std::string detail;
  EXPECT_TRUE(monitor.wait_free(rig.engine.now(), 30000, &detail)) << detail;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TimestampSweep,
    ::testing::Combine(::testing::Values(3u, 5u, 7u),
                       ::testing::Values(501ull, 502ull),
                       ::testing::Values(0u, 1u)),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "N" + std::to_string(std::get<0>(info.param)) + "Seed" +
             std::to_string(std::get<1>(info.param)) + "Crash" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace wfd::dining
