// Action-system tests: guarded-command semantics, weak fairness of the
// rotating scan, upon-receive actions, and component hosting/interleaving.
#include <gtest/gtest.h>

#include <memory>

#include "action/action_system.hpp"
#include "sim/engine.hpp"

namespace wfd::action {
namespace {

using sim::ComponentHost;
using sim::Context;
using sim::Engine;
using sim::Message;
using sim::Payload;

std::unique_ptr<ComponentHost> host_of(std::shared_ptr<ActionSystem> system,
                                       std::vector<sim::Port> ports = {0}) {
  auto host = std::make_unique<ComponentHost>();
  host->add_component(std::move(system), ports);
  return host;
}

TEST(ActionSystem, DisabledActionsNeverRun) {
  auto system = std::make_shared<ActionSystem>();
  int ran = 0;
  system->add_action("never", [](Context&) { return false; },
                     [&](Context&) { ++ran; });
  Engine engine({.seed = 1});
  engine.add_process(host_of(system));
  engine.init();
  engine.run(100);
  EXPECT_EQ(ran, 0);
  EXPECT_EQ(system->total_executions(), 0u);
}

TEST(ActionSystem, EnabledActionRunsEveryTick) {
  auto system = std::make_shared<ActionSystem>();
  system->add_action("always", [](Context&) { return true; }, [](Context&) {});
  Engine engine({.seed = 2});
  engine.add_process(host_of(system));
  engine.init();
  engine.run(50);
  EXPECT_EQ(system->executions("always"), 50u);
}

TEST(ActionSystem, RotatingScanIsWeaklyFair) {
  auto system = std::make_shared<ActionSystem>();
  system->add_action("a", [](Context&) { return true; }, [](Context&) {});
  system->add_action("b", [](Context&) { return true; }, [](Context&) {});
  system->add_action("c", [](Context&) { return true; }, [](Context&) {});
  Engine engine({.seed = 3});
  engine.add_process(host_of(system));
  engine.init();
  engine.run(300);
  EXPECT_EQ(system->executions("a"), 100u);
  EXPECT_EQ(system->executions("b"), 100u);
  EXPECT_EQ(system->executions("c"), 100u);
}

TEST(ActionSystem, GuardPriorityFallsThrough) {
  auto system = std::make_shared<ActionSystem>();
  bool gate = false;
  system->add_action("gated", [&](Context&) { return gate; }, [](Context&) {});
  system->add_action("open", [](Context&) { return true; }, [](Context&) {});
  Engine engine({.seed = 4});
  engine.add_process(host_of(system));
  engine.init();
  engine.run(10);
  EXPECT_EQ(system->executions("gated"), 0u);
  EXPECT_EQ(system->executions("open"), 10u);
  gate = true;
  engine.run(10);
  EXPECT_GT(system->executions("gated"), 3u);
}

TEST(ActionSystem, UponReceiveConsumesMessage) {
  auto sender = std::make_shared<ActionSystem>();
  auto receiver = std::make_shared<ActionSystem>();
  int payloads = 0;
  sender->add_action("send_once", [](Context&) { return true; },
                     [sent = false](Context& ctx) mutable {
                       if (!sent) {
                         ctx.send(1, 9, Payload{42, 7, 0, 0});
                         sent = true;
                       }
                     });
  receiver->add_upon("on_msg", 9, 42,
                     [&](Context&, const Message& msg) {
                       payloads += static_cast<int>(msg.payload.a);
                     });
  Engine engine({.seed = 5});
  engine.add_process(host_of(sender, {8}));
  engine.add_process(host_of(receiver, {9}));
  engine.init();
  engine.run(200);
  EXPECT_EQ(payloads, 7);
  EXPECT_EQ(receiver->inbox_size(), 0u);
}

TEST(ActionSystem, TakeMessageMatchesPortAndKind) {
  auto system = std::make_shared<ActionSystem>();
  Engine engine({.seed = 6});
  engine.add_process(host_of(system, {1, 2}));
  engine.init();
  Context ctx(engine, 0);
  system->on_message(ctx, Message{0, 0, 1, Payload{10, 111, 0, 0}, 0, 0});
  system->on_message(ctx, Message{0, 0, 2, Payload{10, 222, 0, 0}, 0, 1});
  system->on_message(ctx, Message{0, 0, 1, Payload{20, 333, 0, 0}, 0, 2});
  EXPECT_TRUE(system->peek_message(1, 10));
  EXPECT_TRUE(system->peek_message(2, 10));
  EXPECT_FALSE(system->peek_message(2, 20));
  auto msg = system->take_message(1, 20);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->payload.a, 333u);
  EXPECT_EQ(system->inbox_size(), 2u);
}

TEST(ComponentHost, InterleavesComponentsRoundRobin) {
  auto a = std::make_shared<ActionSystem>();
  auto b = std::make_shared<ActionSystem>();
  a->add_action("tick", [](Context&) { return true; }, [](Context&) {});
  b->add_action("tick", [](Context&) { return true; }, [](Context&) {});
  auto host = std::make_unique<ComponentHost>();
  host->add_component(a, {1});
  host->add_component(b, {2});
  Engine engine({.seed = 7});
  engine.add_process(std::move(host));
  engine.init();
  engine.run(100);
  EXPECT_EQ(a->executions("tick"), 50u);
  EXPECT_EQ(b->executions("tick"), 50u);
}

TEST(ComponentHost, RoutesByPort) {
  auto a = std::make_shared<ActionSystem>();
  auto b = std::make_shared<ActionSystem>();
  auto host = std::make_unique<ComponentHost>();
  host->add_component(a, {1});
  host->add_component(b, {2});
  ComponentHost* host_ptr = host.get();
  Engine engine({.seed = 8});
  engine.add_process(std::move(host));
  engine.init();
  Context ctx(engine, 0);
  host_ptr->on_message(ctx, Message{0, 0, 2, Payload{5, 0, 0, 0}, 0, 0});
  EXPECT_EQ(a->inbox_size(), 0u);
  EXPECT_EQ(b->inbox_size(), 1u);
}

TEST(ComponentHost, DuplicatePortRegistrationThrows) {
  auto host = std::make_unique<ComponentHost>();
  host->add_component(std::make_shared<ActionSystem>(), {4});
  EXPECT_THROW(host->add_component(std::make_shared<ActionSystem>(), {4}),
               std::logic_error);
}

}  // namespace
}  // namespace wfd::action
