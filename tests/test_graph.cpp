// Conflict-graph tests: structure invariants and generator shapes.
#include <gtest/gtest.h>

#include "graph/conflict_graph.hpp"

namespace wfd::graph {
namespace {

TEST(ConflictGraph, AddEdgeIsSymmetricAndIdempotent) {
  ConflictGraph g(4);
  g.add_edge(0, 2);
  g.add_edge(2, 0);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 1u);
}

TEST(ConflictGraph, RejectsSelfLoopsAndBadVertices) {
  ConflictGraph g(3);
  EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 3), std::out_of_range);
}

TEST(ConflictGraph, NeighborsAreSorted) {
  ConflictGraph g(5);
  g.add_edge(2, 4);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  const auto& nbrs = g.neighbors(2);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 0u);
  EXPECT_EQ(nbrs[1], 3u);
  EXPECT_EQ(nbrs[2], 4u);
}

TEST(Generators, RingShape) {
  const auto g = make_ring(6);
  EXPECT_EQ(g.size(), 6u);
  EXPECT_EQ(g.edge_count(), 6u);
  for (std::uint32_t v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_TRUE(g.connected());
}

TEST(Generators, RingOfTwoIsSingleEdge) {
  const auto g = make_ring(2);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Generators, CliqueShape) {
  const auto g = make_clique(5);
  EXPECT_EQ(g.edge_count(), 10u);
  EXPECT_EQ(g.max_degree(), 4u);
  EXPECT_TRUE(g.connected());
}

TEST(Generators, StarShape) {
  const auto g = make_star(7);
  EXPECT_EQ(g.edge_count(), 6u);
  EXPECT_EQ(g.degree(0), 6u);
  for (std::uint32_t v = 1; v < 7; ++v) EXPECT_EQ(g.degree(v), 1u);
}

TEST(Generators, PathShape) {
  const auto g = make_path(5);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_TRUE(g.connected());
}

TEST(Generators, GridShape) {
  const auto g = make_grid(3, 4);
  EXPECT_EQ(g.size(), 12u);
  // edges: 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8
  EXPECT_EQ(g.edge_count(), 17u);
  EXPECT_TRUE(g.connected());
  EXPECT_EQ(g.max_degree(), 4u);
}

TEST(Generators, RandomConnectedIsConnected) {
  sim::Rng rng(99);
  for (double p : {0.0, 0.1, 0.5, 0.9}) {
    const auto g = make_random_connected(12, p, rng);
    EXPECT_TRUE(g.connected()) << "p=" << p;
    EXPECT_GE(g.edge_count(), 11u);
  }
}

TEST(Generators, RandomDensityGrowsWithP) {
  sim::Rng rng(7);
  const auto sparse = make_random_connected(20, 0.05, rng);
  const auto dense = make_random_connected(20, 0.8, rng);
  EXPECT_LT(sparse.edge_count(), dense.edge_count());
}

TEST(Generators, PairIsSingleEdge) {
  const auto g = make_pair();
  EXPECT_EQ(g.size(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(ConflictGraph, DisconnectedDetected) {
  ConflictGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(g.connected());
}

TEST(ConflictGraph, EdgesListSortedCanonical) {
  const auto g = make_ring(4);
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 4u);
  for (const auto& [u, v] : edges) EXPECT_LT(u, v);
  for (std::size_t i = 1; i < edges.size(); ++i) {
    EXPECT_LT(edges[i - 1], edges[i]);
  }
}

}  // namespace
}  // namespace wfd::graph
