// Whole-run determinism and golden-trace pinning. Every run is a pure
// function of (configuration, seed): same seed ⇒ byte-identical event trace
// and EngineStats, across all schedulers, before and after crashes. The
// golden constants below were captured from the pre-overhaul engine (the
// per-destination std::priority_queue<InTransit> heap); the calendar transit
// queue and the masked trace fast path must reproduce them exactly — they
// change the data structure, never the (deliver_at, seq) delivery order or
// the RNG draw sequence.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "dining/client.hpp"
#include "graph/conflict_graph.hpp"
#include "harness/rig.hpp"
#include "reduce/extraction.hpp"

namespace wfd::sim {
namespace {

/// FNV-1a over the full event stream; order- and content-sensitive.
struct TraceHasher {
  std::uint64_t hash = 1469598103934665603ull;
  std::uint64_t events = 0;

  void mix(std::uint64_t word) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (word >> (8 * byte)) & 0xff;
      hash *= 1099511628211ull;
    }
  }
  void on_event(const Event& e) {
    mix(e.time);
    mix(static_cast<std::uint64_t>(e.kind));
    mix(e.pid);
    mix(e.a);
    mix(e.b);
    mix(e.c);
    ++events;
  }
};

struct Fingerprint {
  std::uint64_t trace_hash = 0;
  std::uint64_t events = 0;
  std::uint64_t stats_hash = 0;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

std::uint64_t hash_stats(const Engine& engine) {
  TraceHasher h;
  const EngineStats& s = engine.stats();
  h.mix(s.steps);
  h.mix(s.messages_sent);
  h.mix(s.messages_delivered);
  h.mix(s.messages_dropped);
  h.mix(s.crashes);
  h.mix(engine.now());
  return h.hash;
}

/// Alg. 1/2 extraction over the real wait-free dining box, one crash —
/// the reduction workload of the paper, message- and crash-heavy.
Fingerprint run_reduction_config(std::uint64_t seed) {
  harness::Rig rig(
      harness::RigOptions{.seed = seed, .n = 3, .detector_lag = 25});
  reduce::WaitFreeBoxFactory factory(
      [&rig](ProcessId p) { return rig.detectors[p].get(); });
  auto extraction = reduce::build_full_extraction(rig.hosts, factory,
                                                  reduce::ExtractionOptions{});
  TraceHasher hasher;
  rig.engine.trace().subscribe(
      [&hasher](const Event& e) { hasher.on_event(e); });
  rig.engine.schedule_crash(2, 5000);
  rig.engine.init();
  rig.engine.run(20000);
  return {hasher.hash, hasher.events, hash_stats(rig.engine)};
}

/// Hygienic dining on a ring with standard clients — fork/token traffic
/// through the default uniform-delay channel.
Fingerprint run_hygienic_config(std::uint64_t seed) {
  harness::Rig rig(harness::RigOptions{.seed = seed, .n = 5});
  auto instance = rig.add_hygienic_dining(10, 1, graph::make_ring(5));
  auto clients = rig.add_clients(instance, dining::ClientConfig{});
  TraceHasher hasher;
  rig.engine.trace().subscribe(
      [&hasher](const Event& e) { hasher.on_event(e); });
  rig.engine.init();
  rig.engine.run(20000);
  return {hasher.hash, hasher.events, hash_stats(rig.engine)};
}

// Captured from the pre-overhaul engine (heap-based transit queues) at the
// commit introducing this test; see PR "simulation-core hot-path overhaul".
constexpr Fingerprint kGoldenReduction{3659772812120896702ull, 28985,
                                       13410170420198056445ull};
constexpr Fingerprint kGoldenHygienic{2405967122402567080ull, 25494,
                                      6419710400179810867ull};

TEST(GoldenTrace, ReductionConfigMatchesPreOverhaulEngine) {
  const Fingerprint got = run_reduction_config(22);
  EXPECT_EQ(got.trace_hash, kGoldenReduction.trace_hash);
  EXPECT_EQ(got.events, kGoldenReduction.events);
  EXPECT_EQ(got.stats_hash, kGoldenReduction.stats_hash);
}

TEST(GoldenTrace, HygienicConfigMatchesPreOverhaulEngine) {
  const Fingerprint got = run_hygienic_config(3);
  EXPECT_EQ(got.trace_hash, kGoldenHygienic.trace_hash);
  EXPECT_EQ(got.events, kGoldenHygienic.events);
  EXPECT_EQ(got.stats_hash, kGoldenHygienic.stats_hash);
}

TEST(GoldenTrace, RunsArePureFunctionsOfSeed) {
  EXPECT_EQ(run_reduction_config(22), run_reduction_config(22));
  EXPECT_EQ(run_hygienic_config(3), run_hygienic_config(3));
  EXPECT_NE(run_reduction_config(22), run_reduction_config(23));
}

/// Gossip workload for scheduler determinism: every step sends to the ring
/// successor, so scheduling choices shape the whole trace.
class RingGossip final : public Process {
 public:
  explicit RingGossip(std::uint32_t n) : n_(n) {}
  void on_step(Context& ctx) override {
    ++ticks_;
    ctx.send((ctx.self() + 1) % n_, 1, Payload{1, ticks_, 0, 0});
  }

 private:
  std::uint32_t n_;
  std::uint64_t ticks_ = 0;
};

Fingerprint run_gossip(std::unique_ptr<Scheduler> scheduler,
                       std::uint64_t seed, bool with_crashes) {
  constexpr std::uint32_t n = 6;
  Engine engine({.seed = seed});
  for (std::uint32_t p = 0; p < n; ++p) {
    engine.add_process(std::make_unique<RingGossip>(n));
  }
  engine.set_scheduler(std::move(scheduler));
  if (with_crashes) {
    engine.schedule_crash(1, 500);
    engine.schedule_crash(4, 500);  // same tick: pid order must be stable
    engine.schedule_crash(2, 2000);
  }
  TraceHasher hasher;
  engine.trace().subscribe([&hasher](const Event& e) { hasher.on_event(e); });
  engine.init();
  engine.run(10000);
  return {hasher.hash, hasher.events, hash_stats(engine)};
}

TEST(SchedulerDeterminism, SameSeedSameTraceAcrossAllSchedulers) {
  const auto weights = std::vector<std::uint64_t>{1, 3, 1, 7, 2, 5};
  const std::vector<PausingScheduler::Pause> pauses{{0, 100, 900},
                                                    {3, 2000, 2500}};
  for (const bool crashes : {false, true}) {
    EXPECT_EQ(run_gossip(std::make_unique<RandomScheduler>(), 11, crashes),
              run_gossip(std::make_unique<RandomScheduler>(), 11, crashes));
    EXPECT_EQ(
        run_gossip(std::make_unique<RoundRobinScheduler>(), 11, crashes),
        run_gossip(std::make_unique<RoundRobinScheduler>(), 11, crashes));
    EXPECT_EQ(run_gossip(std::make_unique<WeightedScheduler>(weights), 11,
                         crashes),
              run_gossip(std::make_unique<WeightedScheduler>(weights), 11,
                         crashes));
    EXPECT_EQ(
        run_gossip(std::make_unique<PausingScheduler>(pauses), 11, crashes),
        run_gossip(std::make_unique<PausingScheduler>(pauses), 11, crashes));
  }
}

}  // namespace
}  // namespace wfd::sim
