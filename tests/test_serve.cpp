// serve-smoke: the campaign daemon (src/serve) exercised in-process over
// real unix sockets — NDJSON framing, request validation, the bounded
// admission queue's deterministic backpressure edge, cache-hit byte
// identity, disconnect cancellation, drain semantics, and the headline
// determinism pin: a request submitted through the socket yields a result
// payload bit-identical to execute_request() called directly, across three
// conformance vectors plus raw-config and campaign submissions. The
// end-to-end suite against the real wfd_serve binary (SIGTERM, process
// lifecycle) lives in tools/wfd_client.py --e2e.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fuzz/fuzzer.hpp"
#include "fuzz/oracles.hpp"
#include "serve/framing.hpp"
#include "serve/serve.hpp"
#include "util/json.hpp"

namespace wfd::serve {
namespace {

namespace fs = std::filesystem;
using util::Json;

// write_line must surface a dead peer as `false`, never as SIGPIPE death —
// the same process-wide stance the daemon mains take.
struct SigpipeIgnore {
  SigpipeIgnore() { std::signal(SIGPIPE, SIG_IGN); }
} g_sigpipe_ignore;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// --- framing ---------------------------------------------------------------

TEST(Framing, ReassemblesLinesAcrossArbitraryChunks) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const char* chunks[] = {"hel", "lo\nwor", "ld\n\ntail"};
  for (const char* chunk : chunks) {
    ASSERT_GT(::write(fds[1], chunk, std::strlen(chunk)), 0);
  }
  ::close(fds[1]);
  LineReader reader(fds[0]);
  std::string line;
  EXPECT_EQ(reader.next(&line), LineReader::Status::kLine);
  EXPECT_EQ(line, "hello");
  EXPECT_EQ(reader.next(&line), LineReader::Status::kLine);
  EXPECT_EQ(line, "world");
  EXPECT_EQ(reader.next(&line), LineReader::Status::kLine);
  EXPECT_EQ(line, "");  // the blank line between \n\n
  // The unterminated tail before EOF still comes out as a line.
  EXPECT_EQ(reader.next(&line), LineReader::Status::kLine);
  EXPECT_EQ(line, "tail");
  EXPECT_EQ(reader.next(&line), LineReader::Status::kEof);
  ::close(fds[0]);
}

TEST(Framing, StripsCarriageReturnAndCapsLineLength) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::string crlf = "ping\r\n";
  ASSERT_GT(::write(fds[1], crlf.data(), crlf.size()), 0);
  const std::string runaway(64, 'x');  // no newline, over the 16-byte cap
  ASSERT_GT(::write(fds[1], runaway.data(), runaway.size()), 0);
  ::close(fds[1]);
  LineReader reader(fds[0], 16);
  std::string line;
  EXPECT_EQ(reader.next(&line), LineReader::Status::kLine);
  EXPECT_EQ(line, "ping");
  EXPECT_EQ(reader.next(&line), LineReader::Status::kTooLong);
  // Poisoned: the reader never yields data from an over-limit stream.
  EXPECT_EQ(reader.next(&line), LineReader::Status::kTooLong);
  ::close(fds[0]);
}

TEST(Framing, WriteLineToDeadPeerReturnsFalse) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ::close(fds[0]);  // peer gone
  EXPECT_FALSE(write_line(fds[1], "{\"type\":\"ping\"}"));  // EPIPE, no kill
  ::close(fds[1]);

  int pair[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);
  EXPECT_TRUE(write_line(pair[0], "hello"));
  LineReader reader(pair[1]);
  std::string line;
  EXPECT_EQ(reader.next(&line), LineReader::Status::kLine);
  EXPECT_EQ(line, "hello");
  ::close(pair[1]);
  // First send after close may succeed (buffered); the connection reset
  // must surface as false within a bounded number of writes, not a signal.
  bool ok = true;
  for (int i = 0; i < 4 && ok; ++i) ok = write_line(pair[0], "after close");
  EXPECT_FALSE(ok);
  ::close(pair[0]);
}

// --- request validation ----------------------------------------------------

Json parse_doc(const std::string& text) {
  Json doc;
  std::string error;
  EXPECT_TRUE(Json::parse(text, &doc, &error)) << error;
  return doc;
}

TEST(ParseSubmit, RejectsMalformedRequests) {
  Request request;
  std::string error;
  EXPECT_FALSE(parse_submit(parse_doc("{\"type\":\"submit\"}"), &request,
                            &error));
  EXPECT_NE(error.find("kind"), std::string::npos) << error;

  EXPECT_FALSE(parse_submit(
      parse_doc("{\"type\":\"submit\",\"kind\":\"campaign\"}"), &request,
      &error));
  EXPECT_NE(error.find("runs"), std::string::npos) << error;

  EXPECT_FALSE(parse_submit(
      parse_doc(
          "{\"type\":\"submit\",\"kind\":\"campaign\",\"runs\":5000000}"),
      &request, &error));

  EXPECT_FALSE(parse_submit(
      parse_doc("{\"type\":\"submit\",\"kind\":\"campaign\",\"runs\":4,"
                "\"targets\":\"no_such_target\"}"),
      &request, &error));
  EXPECT_NE(error.find("no_such_target"), std::string::npos) << error;

  // Corpus names are names, not paths.
  EXPECT_FALSE(parse_submit(
      parse_doc("{\"type\":\"submit\",\"kind\":\"evolve\","
                "\"corpus\":\"../evil\"}"),
      &request, &error));
  EXPECT_NE(error.find("corpus"), std::string::npos) << error;

  EXPECT_FALSE(parse_submit(
      parse_doc("{\"type\":\"submit\",\"kind\":\"run\"}"), &request, &error));
  EXPECT_FALSE(parse_submit(
      parse_doc("{\"type\":\"submit\",\"kind\":\"warp\"}"), &request,
      &error));
}

TEST(ParseSubmit, CacheKeyIsCanonical) {
  // Two textually different descriptions of the same run (field order,
  // defaulted members, out-of-domain values the normalizer clamps) share
  // one cache key.
  Request a;
  Request b;
  std::string error;
  ASSERT_TRUE(parse_submit(
      parse_doc("{\"type\":\"submit\",\"kind\":\"run\",\"config\":"
                "{\"seed\":9,\"target\":\"dining\",\"n\":3}}"),
      &a, &error))
      << error;
  ASSERT_TRUE(parse_submit(
      parse_doc("{\"type\":\"submit\",\"kind\":\"run\",\"config\":"
                "{\"n\":3,\"seed\":9,\"target\":\"dining\","
                "\"detector_lag\":20}}"),
      &b, &error))
      << error;
  EXPECT_EQ(cache_key(a), cache_key(b));
  EXPECT_NE(cache_key(a).find("run|"), std::string::npos);

  // Evolve is stateful (its on-disk corpus advances): never cached.
  Request evolve;
  ASSERT_TRUE(parse_submit(
      parse_doc("{\"type\":\"submit\",\"kind\":\"evolve\"}"), &evolve,
      &error))
      << error;
  EXPECT_TRUE(cache_key(evolve).empty());
}

// --- in-process daemon over a real unix socket -----------------------------

class TestClient {
 public:
  bool connect_unix(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) return false;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
        0) {
      return false;
    }
    reader_ = std::make_unique<LineReader>(fd_);
    return true;
  }
  bool send(const std::string& line) { return write_line(fd_, line); }
  bool next(std::string* line) {
    return reader_->next(line) == LineReader::Status::kLine;
  }
  /// Read lines until one of the given type arrives (progress heartbeats
  /// and accepted acks in between are skipped).
  bool next_of_type(const char* type, std::string* line) {
    const std::string needle = std::string("\"type\":\"") + type + "\"";
    while (next(line)) {
      if (line->find(needle) != std::string::npos) return true;
    }
    return false;
  }
  void close_fd() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~TestClient() { close_fd(); }

 private:
  int fd_ = -1;
  std::unique_ptr<LineReader> reader_;
};

/// The raw payload bytes of a {"type":"result",...,"payload":{...}} line
/// (payload is the last member, so this is a pure suffix slice).
std::string payload_of(const std::string& result_line) {
  const std::string marker = "\"payload\":";
  const std::size_t pos = result_line.find(marker);
  if (pos == std::string::npos || result_line.empty() ||
      result_line.back() != '}') {
    return std::string();
  }
  return result_line.substr(pos + marker.size(),
                            result_line.size() - pos - marker.size() - 1);
}

class ServeTest : public ::testing::Test {
 protected:
  ServerOptions options_;  ///< adjust before boot()
  std::unique_ptr<Server> server_;
  std::thread runner_;
  std::string sock_path_;

  void boot() {
    static std::atomic<int> counter{0};
    sock_path_ =
        (fs::temp_directory_path() /
         ("wfd_serve_t" + std::to_string(::getpid()) + "_" +
          std::to_string(counter.fetch_add(1) + 1) + ".sock"))
            .string();
    options_.unix_path = sock_path_;
    server_ = std::make_unique<Server>(options_);
    std::string error;
    ASSERT_TRUE(server_->start(&error)) << error;
    runner_ = std::thread([this] { server_->run(); });
  }

  void drain_and_join() {
    if (server_ != nullptr) server_->request_drain();
    if (runner_.joinable()) runner_.join();
  }

  void TearDown() override {
    drain_and_join();
    server_.reset();
  }

  std::uint64_t counter_value(const char* name) {
    return server_->metrics().snapshot().counter_value(name);
  }
};

TEST_F(ServeTest, PingStatsAndUnknownTypeNeverWedge) {
  boot();
  TestClient client;
  ASSERT_TRUE(client.connect_unix(sock_path_));
  ASSERT_TRUE(client.send("{\"type\":\"ping\"}"));
  std::string line;
  ASSERT_TRUE(client.next(&line));
  EXPECT_EQ(line, "{\"type\":\"pong\"}");

  ASSERT_TRUE(client.send("{\"type\":\"warp\"}"));
  ASSERT_TRUE(client.next(&line));
  EXPECT_NE(line.find("\"type\":\"error\""), std::string::npos) << line;

  ASSERT_TRUE(client.send("this is not json"));
  ASSERT_TRUE(client.next(&line));
  EXPECT_NE(line.find("bad JSON"), std::string::npos) << line;

  ASSERT_TRUE(client.send("{\"type\":\"stats\"}"));
  ASSERT_TRUE(client.next(&line));
  Json doc;
  std::string error;
  ASSERT_TRUE(Json::parse(line, &doc, &error)) << error;
  const Json* registry = doc.find("registry");
  ASSERT_NE(registry, nullptr);
  ASSERT_NE(registry->find("serve.rejected.invalid"), nullptr);
  EXPECT_EQ(registry->find("serve.rejected.invalid")->as_u64(), 2u);
}

// The headline pin: a request submitted through the socket produces a
// result payload bit-identical to executing the same parsed request
// directly — across three conformance vectors, a raw config, and a swarm
// campaign.
TEST_F(ServeTest, SocketResultsAreBitIdenticalToDirectExecution) {
  boot();
  TestClient client;
  ASSERT_TRUE(client.connect_unix(sock_path_));

  const auto pin = [&](const Json& submit_doc) {
    Request request;
    std::string error;
    ASSERT_TRUE(parse_submit(submit_doc, &request, &error)) << error;
    const std::string direct = execute_request(request, ExecuteHooks{});

    ASSERT_TRUE(client.send(submit_doc.dump(0)));
    std::string line;
    ASSERT_TRUE(client.next_of_type("result", &line));
    EXPECT_EQ(payload_of(line), direct) << line;
  };

  // Three conformance vectors through the scenario-DSL path.
  for (const char* vector :
       {"v01_exclusive_clean.scenario.json",
        "v04_broken_single_instance.scenario.json",
        "v07_dining_ring.scenario.json"}) {
    SCOPED_TRACE(vector);
    const std::string text =
        read_file(std::string(WFD_VECTOR_DIR) + "/" + vector);
    ASSERT_FALSE(text.empty());
    Json submit = Json::object();
    submit.set("type", Json::of_string("submit"));
    submit.set("kind", Json::of_string("scenario"));
    submit.set("scenario", parse_doc(text));
    pin(submit);
  }

  // A raw fuzz config (the wfd_fuzz --replay shape).
  {
    const fuzz::FuzzConfig config = fuzz::normalize(
        fuzz::sample_config(11, 0, fuzz::legal_targets()));
    Json submit = Json::object();
    submit.set("type", Json::of_string("submit"));
    submit.set("kind", Json::of_string("run"));
    submit.set("config", parse_doc(fuzz::config_to_json(config, 0)));
    pin(submit);
  }

  // A swarm campaign (the wfd_fuzz --runs shape, via harness batches).
  {
    Json submit = parse_doc(
        "{\"type\":\"submit\",\"kind\":\"campaign\",\"runs\":4,"
        "\"master_seed\":9,\"targets\":\"legal\"}");
    pin(submit);
  }
}

TEST_F(ServeTest, CacheHitReturnsIdenticalBytesInstantly) {
  boot();
  TestClient client;
  ASSERT_TRUE(client.connect_unix(sock_path_));
  const std::string submit =
      "{\"type\":\"submit\",\"kind\":\"run\",\"config\":"
      "{\"seed\":5,\"target\":\"dining\",\"n\":3,\"steps\":5000}}";
  ASSERT_TRUE(client.send(submit));
  std::string first;
  ASSERT_TRUE(client.next_of_type("result", &first));
  EXPECT_NE(first.find("\"cached\":false"), std::string::npos) << first;

  ASSERT_TRUE(client.send(submit));
  std::string second;
  ASSERT_TRUE(client.next_of_type("result", &second));
  EXPECT_NE(second.find("\"cached\":true"), std::string::npos) << second;
  EXPECT_EQ(payload_of(first), payload_of(second));

  EXPECT_EQ(counter_value("serve.cache.hits"), 1u);
  EXPECT_EQ(counter_value("serve.cache.misses"), 1u);
}

TEST_F(ServeTest, BackpressureRejectsExactlyAtCapacity) {
  options_.workers = 0;  // admission-only: nothing dequeues
  options_.queue_capacity = 2;
  boot();
  TestClient client;
  ASSERT_TRUE(client.connect_unix(sock_path_));
  std::string line;
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(client.send(
        "{\"type\":\"submit\",\"kind\":\"run\",\"config\":{\"seed\":" +
        std::to_string(100 + i) + ",\"target\":\"dining\"}}"));
    ASSERT_TRUE(client.next(&line));
    EXPECT_NE(line.find("\"type\":\"accepted\""), std::string::npos) << line;
  }
  ASSERT_TRUE(client.send(
      "{\"type\":\"submit\",\"kind\":\"run\",\"config\":{\"seed\":102,"
      "\"target\":\"dining\"}}"));
  ASSERT_TRUE(client.next(&line));
  EXPECT_NE(line.find("\"type\":\"rejected\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"reason\":\"backpressure\""), std::string::npos)
      << line;
  EXPECT_EQ(counter_value("serve.rejected.backpressure"), 1u);

  // A full queue never wedges the session: the daemon keeps answering.
  ASSERT_TRUE(client.send("{\"type\":\"ping\"}"));
  ASSERT_TRUE(client.next(&line));
  EXPECT_EQ(line, "{\"type\":\"pong\"}");
}

TEST_F(ServeTest, DisconnectCancelsItsJobsAndLeavesOthersServed) {
  options_.workers = 1;
  boot();
  TestClient doomed;
  ASSERT_TRUE(doomed.connect_unix(sock_path_));
  std::string line;
  // Two campaign jobs keep the single worker busy past the disconnect.
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(doomed.send(
        "{\"type\":\"submit\",\"kind\":\"campaign\",\"runs\":6,"
        "\"master_seed\":" +
        std::to_string(40 + i) + "}"));
    ASSERT_TRUE(doomed.next(&line));
    EXPECT_NE(line.find("\"type\":\"accepted\""), std::string::npos) << line;
  }
  doomed.close_fd();  // vanish mid-stream

  TestClient survivor;
  ASSERT_TRUE(survivor.connect_unix(sock_path_));
  ASSERT_TRUE(survivor.send(
      "{\"type\":\"submit\",\"kind\":\"run\",\"config\":{\"seed\":3,"
      "\"target\":\"dining\",\"steps\":5000}}"));
  ASSERT_TRUE(survivor.next_of_type("result", &line));
  EXPECT_NE(line.find("\"verdict\":"), std::string::npos) << line;

  drain_and_join();
  // At least the queued second job was cancelled instead of computed into
  // the void; nothing crashed or wedged along the way.
  EXPECT_GE(counter_value("serve.jobs.cancelled"), 1u);
  EXPECT_EQ(counter_value("serve.clients.disconnected"), 2u);
}

TEST_F(ServeTest, DrainFinishesQueuedJobsThenHangsUp) {
  options_.workers = 1;
  boot();
  TestClient client;
  ASSERT_TRUE(client.connect_unix(sock_path_));
  ASSERT_TRUE(client.send(
      "{\"type\":\"submit\",\"kind\":\"campaign\",\"runs\":4,"
      "\"master_seed\":9}"));
  std::string line;
  ASSERT_TRUE(client.next(&line));
  EXPECT_NE(line.find("\"type\":\"accepted\""), std::string::npos) << line;

  server_->request_drain();  // drain with the job still in flight
  ASSERT_TRUE(client.next_of_type("result", &line));  // result still flushed
  EXPECT_NE(line.find("\"kind\":\"campaign\""), std::string::npos) << line;
  // After the flush the daemon hangs up and the socket path is gone.
  while (client.next(&line)) {
  }
  drain_and_join();
  EXPECT_FALSE(fs::exists(sock_path_));
  EXPECT_EQ(counter_value("serve.jobs.completed"), 1u);
}

TEST_F(ServeTest, EvolveJobCheckpointsItsNamedCorpus) {
  const fs::path root =
      fs::temp_directory_path() / "wfd_serve_test_corpora";
  fs::remove_all(root);
  fs::create_directories(root);
  options_.workers = 1;
  options_.corpus_root = root.string();
  boot();
  TestClient client;
  ASSERT_TRUE(client.connect_unix(sock_path_));
  ASSERT_TRUE(client.send(
      "{\"type\":\"submit\",\"kind\":\"evolve\",\"generations\":2,"
      "\"gen_size\":4,\"master_seed\":7,\"corpus\":\"c1\","
      "\"checkpoint_every\":1,\"shrink\":false}"));
  std::string line;
  bool saw_progress = false;
  for (;;) {
    ASSERT_TRUE(client.next(&line));
    if (line.find("\"type\":\"progress\"") != std::string::npos) {
      EXPECT_NE(line.find("\"phase\":\"evolve\""), std::string::npos) << line;
      saw_progress = true;
    }
    if (line.find("\"type\":\"result\"") != std::string::npos) break;
  }
  EXPECT_TRUE(saw_progress);
  EXPECT_NE(line.find("\"kind\":\"evolve\""), std::string::npos) << line;

  // The per-generation checkpoints materialized the named corpus on disk.
  std::size_t entries = 0;
  for (const auto& file : fs::directory_iterator(root / "c1")) {
    if (file.path().extension() == ".json") ++entries;
  }
  EXPECT_GT(entries, 0u);
  drain_and_join();
  fs::remove_all(root);
}

}  // namespace
}  // namespace wfd::serve
