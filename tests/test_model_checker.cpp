// Model-checker tests: exhaustive verification of the reduction's lemma
// structure over every interleaving of the abstract model, in all three
// regimes (mistake prefix, converged suffix, subject crash).
#include <gtest/gtest.h>

#include "mc/ablation_model.hpp"
#include "mc/gkk_model.hpp"
#include "mc/reduction_model.hpp"

namespace wfd::mc {
namespace {

TEST(ModelChecker, ExclusiveSuffixAllLemmasHold) {
  McOptions options;
  options.mode = BoxMode::kExclusive;
  options.allow_crash = false;
  options.check_accuracy = true;
  options.check_deadlock = true;
  const McResult result = check_reduction(options);
  EXPECT_TRUE(result.ok) << result.violation;
  EXPECT_GT(result.states, 100u);
}

TEST(ModelChecker, ArbitraryModeSafetyLemmasHold) {
  // During the mistake prefix anything can overlap; the safety lemmas
  // (2, 3, 4, 5, 8, 9) must hold regardless. Accuracy is a suffix
  // property, so it is not checked here.
  McOptions options;
  options.mode = BoxMode::kArbitrary;
  options.allow_crash = false;
  options.check_accuracy = false;
  options.check_deadlock = true;
  const McResult result = check_reduction(options);
  EXPECT_TRUE(result.ok) << result.violation;
}

TEST(ModelChecker, CrashRegimeSafeAndComplete) {
  McOptions options;
  options.mode = BoxMode::kExclusive;
  options.allow_crash = true;
  options.check_accuracy = true;
  options.check_deadlock = true;
  const McResult result = check_reduction(options);
  EXPECT_TRUE(result.ok) << result.violation;
}

TEST(ModelChecker, ArbitraryWithCrash) {
  McOptions options;
  options.mode = BoxMode::kArbitrary;
  options.allow_crash = true;
  options.check_accuracy = false;
  options.check_deadlock = true;
  const McResult result = check_reduction(options);
  EXPECT_TRUE(result.ok) << result.violation;
}

TEST(ModelChecker, StateSpaceIsModest) {
  McOptions options;
  options.mode = BoxMode::kArbitrary;
  options.allow_crash = true;
  options.check_accuracy = false;
  const McResult result = check_reduction(options);
  EXPECT_TRUE(result.ok) << result.violation;
  // The abstraction stays tractable — document the scale.
  EXPECT_LT(result.states, 1000000u);
  EXPECT_GT(result.transitions, result.states);
}

TEST(ModelChecker, BudgetExhaustionReported) {
  McOptions options;
  options.max_states = 10;
  const McResult result = check_reduction(options);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.violation.find("budget"), std::string::npos);
}

TEST(ModelChecker, DescribeStateIsReadable) {
  const std::string text = describe_state(0);
  EXPECT_NE(text.find("w0=thinking"), std::string::npos);
  EXPECT_NE(text.find("s1=thinking"), std::string::npos);
}

// --- the GKK liveness counterexample, mechanically -------------------------

TEST(GkkModel, ForkBasedBoxAdmitsEternalWrongfulSuspicion) {
  const GkkResult result = check_gkk(GkkBoxSemantics::kForkBased);
  EXPECT_TRUE(result.lasso_found)
      << "the Section 3 counterexample must exist as a lasso";
  EXPECT_FALSE(result.witness_cycle.empty());
  EXPECT_NE(result.witness_cycle.find("suspects correct q"),
            std::string::npos);
}

TEST(GkkModel, LockoutBoxAdmitsNoSuchLasso) {
  const GkkResult result = check_gkk(GkkBoxSemantics::kLockout);
  EXPECT_FALSE(result.lasso_found)
      << "with the never-exiting eater holding the lock, the witness is "
         "locked out: no infinite wrongful-suspicion run — cycle: "
      << result.witness_cycle;
}

TEST(AblationModel, SingleInstanceAdmitsEternalWrongfulSuspicion) {
  // Even against a wait-free exclusive box: there is a legal cycle in
  // which the subject keeps completing meals AND the witness keeps
  // judging without a ping — the mechanical counterpart of E9, and the
  // reason the paper's construction needs two instances + the hand-off.
  const AblationResult result = check_single_instance_ablation();
  EXPECT_TRUE(result.lasso_found) << "expected the E9 lasso";
  EXPECT_NE(result.witness_cycle.find("wrongfully suspects"),
            std::string::npos);
  EXPECT_LT(result.states, 200u);
}

TEST(GkkModel, StateSpacesAreTiny) {
  const GkkResult fork_based = check_gkk(GkkBoxSemantics::kForkBased);
  const GkkResult lockout = check_gkk(GkkBoxSemantics::kLockout);
  EXPECT_LT(fork_based.states, 100u);
  EXPECT_LT(lockout.states, 100u);
  EXPECT_GT(fork_based.transitions, fork_based.states);
}

}  // namespace
}  // namespace wfd::mc
