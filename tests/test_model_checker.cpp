// Model-checker tests: exhaustive verification of the reduction's lemma
// structure over every interleaving of the abstract model, in all three
// regimes (mistake prefix, converged suffix, subject crash) — all driven
// through the unified mc::run_check / mc::CheckResult API — plus the
// parallel engine's determinism guarantee (identical state count, depth
// and verdict at every thread count).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "harness/campaign.hpp"
#include "mc/ablation_model.hpp"
#include "mc/engine.hpp"
#include "mc/gkk_model.hpp"
#include "mc/reduction_model.hpp"

namespace wfd::mc {
namespace {

TEST(ModelChecker, ExclusiveSuffixAllLemmasHold) {
  McOptions options;
  options.mode = BoxMode::kExclusive;
  options.allow_crash = false;
  options.check_accuracy = true;
  options.check_deadlock = true;
  const CheckResult result = check_reduction(options);
  EXPECT_TRUE(result.ok()) << result.counterexample;
  EXPECT_GT(result.states, 100u);
}

TEST(ModelChecker, ArbitraryModeSafetyLemmasHold) {
  // During the mistake prefix anything can overlap; the safety lemmas
  // (2, 3, 4, 5, 8, 9) must hold regardless. Accuracy is a suffix
  // property, so it is not checked here.
  McOptions options;
  options.mode = BoxMode::kArbitrary;
  options.allow_crash = false;
  options.check_accuracy = false;
  options.check_deadlock = true;
  const CheckResult result = check_reduction(options);
  EXPECT_TRUE(result.ok()) << result.counterexample;
}

TEST(ModelChecker, CrashRegimeSafeAndComplete) {
  McOptions options;
  options.mode = BoxMode::kExclusive;
  options.allow_crash = true;
  options.check_accuracy = true;
  options.check_deadlock = true;
  const CheckResult result = check_reduction(options);
  EXPECT_TRUE(result.ok()) << result.counterexample;
}

TEST(ModelChecker, ArbitraryWithCrash) {
  McOptions options;
  options.mode = BoxMode::kArbitrary;
  options.allow_crash = true;
  options.check_accuracy = false;
  options.check_deadlock = true;
  const CheckResult result = check_reduction(options);
  EXPECT_TRUE(result.ok()) << result.counterexample;
}

TEST(ModelChecker, StateSpaceIsModest) {
  McOptions options;
  options.mode = BoxMode::kArbitrary;
  options.allow_crash = true;
  options.check_accuracy = false;
  const CheckResult result = check_reduction(options);
  EXPECT_TRUE(result.ok()) << result.counterexample;
  // The abstraction stays tractable — document the scale.
  EXPECT_LT(result.states, 1000000u);
  EXPECT_GT(result.transitions, result.states);
}

TEST(ModelChecker, BudgetExhaustionReported) {
  const CheckResult result = check_reduction({}, {.max_states = 10});
  EXPECT_FALSE(result.ok());
  // A budget stop is an aborted search, not a property violation — it must
  // be distinguishable from a real counterexample.
  EXPECT_EQ(result.verdict, Verdict::kBudgetExceeded);
  EXPECT_STREQ(verdict_name(result.verdict), "budget_exceeded");
  EXPECT_NE(result.counterexample.find("budget"), std::string::npos);
}

TEST(ModelChecker, DescribeStateIsReadable) {
  const std::string text = describe_state(0);
  EXPECT_NE(text.find("w0=thinking"), std::string::npos);
  EXPECT_NE(text.find("s1=thinking"), std::string::npos);
}

TEST(ModelChecker, ResultCarriesRunMetadata) {
  const CheckResult result = check_reduction({}, {.threads = 2});
  EXPECT_EQ(result.threads, 2);
  EXPECT_GE(result.wall_ms, 0.0);
  EXPECT_GT(result.depth, 0u);
  EXPECT_EQ(result.verdict, Verdict::kOk);
  // The reduction model collects no graph, so only the seen-set costs
  // memory; both figures are reported for capacity planning.
  EXPECT_GT(result.seen_bytes, 0u);
  EXPECT_EQ(result.graph_bytes, 0u);
}

// The reachable space of the two-pair composition is exactly the product
// of the per-pair spaces (the pairs share no variables), and its BFS
// diameter is the sum — a strong end-to-end check of both the composed
// model and the engine's level accounting.
TEST(ModelChecker, TwoPairCompositionIsProductOfOnePair) {
  McOptions one;  // exclusive suffix, no crash
  const CheckResult single = check_reduction(one, {.threads = 1});
  ASSERT_TRUE(single.ok()) << single.counterexample;

  McOptions two = one;
  two.pairs = 2;
  const CheckResult seq = check_reduction(two, {.threads = 1});
  EXPECT_TRUE(seq.ok()) << seq.counterexample;
  EXPECT_EQ(seq.states, single.states * single.states);
  EXPECT_EQ(seq.transitions, 2 * single.states * single.transitions);
  EXPECT_EQ(seq.depth, 2 * single.depth);

  const CheckResult par = check_reduction(two, {.threads = 4});
  EXPECT_EQ(par.states, seq.states);
  EXPECT_EQ(par.transitions, seq.transitions);
  EXPECT_EQ(par.depth, seq.depth);
  EXPECT_EQ(par.ok(), seq.ok());
}

// --- the parallel engine's determinism guarantee ---------------------------

TEST(ParallelEngine, DeterministicAcrossThreadCounts) {
  for (const BoxMode mode : {BoxMode::kExclusive, BoxMode::kArbitrary}) {
    for (const bool crash : {false, true}) {
      McOptions options;
      options.mode = mode;
      options.allow_crash = crash;
      options.check_accuracy = mode == BoxMode::kExclusive;
      options.check_deadlock = true;
      const CheckResult base = check_reduction(options, {.threads = 1});
      const int oversubscribed =
          2 * static_cast<int>(std::thread::hardware_concurrency() == 0
                                   ? 2u
                                   : std::thread::hardware_concurrency());
      for (const int threads : {2, 4, 8, oversubscribed}) {
        const CheckResult result =
            check_reduction(options, {.threads = threads});
        EXPECT_EQ(result.states, base.states)
            << "mode=" << static_cast<int>(mode) << " crash=" << crash
            << " threads=" << threads;
        EXPECT_EQ(result.transitions, base.transitions);
        EXPECT_EQ(result.depth, base.depth);
        EXPECT_EQ(result.ok(), base.ok());
        EXPECT_EQ(result.counterexample, base.counterexample);
        EXPECT_EQ(result.threads, threads);
      }
    }
  }
}

// A synthetic model with wide BFS levels: the monotone lattice paths of a
// K x K grid. Exercises run_check against a model defined entirely outside
// src/mc — the concept is the whole contract — with closed-form state,
// transition and depth counts.
struct GridModel {
  struct State {
    std::uint64_t bits = 0;
  };
  std::uint64_t side = 64;

  std::vector<State> initial_states() const { return {State{0}}; }

  void successors(const State& st, std::vector<Transition<State>>& out) const {
    const std::uint64_t x = st.bits % side;
    const std::uint64_t y = st.bits / side;
    if (x + 1 < side) out.push_back({State{st.bits + 1}, kLabelNone});
    if (y + 1 < side) out.push_back({State{st.bits + side}, kLabelNone});
  }

  std::string check_state(const State&) const { return {}; }
  std::string check_expansion(const State&,
                              const std::vector<Transition<State>>&) const {
    return {};
  }
  std::string describe(const State& st) const {
    return "(" + std::to_string(st.bits % side) + "," +
           std::to_string(st.bits / side) + ")";
  }
};

static_assert(Model<GridModel>);

TEST(ParallelEngine, GenericGridModelHasClosedFormCounts) {
  const GridModel model{.side = 64};
  const CheckResult base = run_check(model, {.threads = 1});
  EXPECT_TRUE(base.ok());
  EXPECT_EQ(base.states, 64u * 64u);
  EXPECT_EQ(base.transitions, 2u * 64u * 63u);  // 2K(K-1) lattice edges
  EXPECT_EQ(base.depth, 126u);                  // 2(K-1) anti-diagonals
  for (const int threads : {2, 4, 8}) {
    const CheckResult result = run_check(model, {.threads = threads});
    EXPECT_EQ(result.states, base.states) << "threads=" << threads;
    EXPECT_EQ(result.transitions, base.transitions);
    EXPECT_EQ(result.depth, base.depth);
  }
}

TEST(ParallelEngine, BudgetStopIsDeterministicToo) {
  for (const int threads : {1, 2, 4}) {
    const CheckResult result =
        run_check(GridModel{.side = 64}, {.threads = threads,
                                          .max_states = 100});
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.verdict, Verdict::kBudgetExceeded) << "threads=" << threads;
    EXPECT_NE(result.counterexample.find("budget"), std::string::npos);
    // Complete levels only: 1 + 2 + ... + 13 = 91 states, the 14th level
    // would cross the 100-state budget.
    EXPECT_EQ(result.states, 91u) << "threads=" << threads;
  }
}

// Exercises the lock-free seen-set directly: every thread races to insert
// an overlapping key range, and exactly one insertion per distinct key may
// succeed. Named under ParallelEngine so the TSan-instrumented test binary
// picks it up (tests/CMakeLists.txt runs --gtest_filter=ParallelEngine.*).
TEST(ParallelEngine, LockFreeSeenSetConcurrentInsert) {
  constexpr std::uint64_t kKeys = 200000;
  constexpr int kThreads = 8;
  detail::SeenSet seen(kKeys);
  std::atomic<std::uint64_t> inserted{0};
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&seen, &inserted, t] {
      std::uint64_t mine = 0;
      // Each thread walks the full key range from a different offset, so
      // every key is contended by all threads.
      for (std::uint64_t i = 0; i < kKeys; ++i) {
        const std::uint64_t key =
            (i + static_cast<std::uint64_t>(t) * (kKeys / kThreads)) % kKeys;
        if (seen.insert(key)) ++mine;
      }
      inserted.fetch_add(mine);
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(inserted.load(), kKeys);
  // Re-inserting any key now fails.
  for (std::uint64_t key = 0; key < kKeys; key += 997) {
    EXPECT_FALSE(seen.insert(key)) << key;
  }
}

// A model that (wrongly) packs a state equal to the seen-set's reserved
// empty-slot sentinel (~0). The engine must refuse it with a deterministic
// violation instead of silently conflating it with "not seen yet".
struct SentinelModel {
  struct State {
    std::uint64_t bits = 0;
  };
  bool sentinel_initial = false;

  std::vector<State> initial_states() const {
    if (sentinel_initial) return {State{~0ull}};
    return {State{0}};
  }
  void successors(const State& st, std::vector<Transition<State>>& out) const {
    if (st.bits < 3) out.push_back({State{st.bits + 1}, kLabelNone});
    if (st.bits == 3) out.push_back({State{~0ull}, kLabelNone});
  }
  std::string check_state(const State&) const { return {}; }
  std::string check_expansion(const State&,
                              const std::vector<Transition<State>>&) const {
    return {};
  }
  std::string describe(const State& st) const {
    return "s" + std::to_string(st.bits);
  }
};

static_assert(Model<SentinelModel>);

TEST(ParallelEngine, ReservedSentinelKeyIsRejectedNotConflated) {
  for (const int threads : {1, 4}) {
    const CheckResult result = run_check(SentinelModel{}, {.threads = threads});
    EXPECT_EQ(result.verdict, Verdict::kViolation) << "threads=" << threads;
    EXPECT_NE(result.counterexample.find("sentinel"), std::string::npos)
        << result.counterexample;
    EXPECT_NE(result.counterexample.find("s3"), std::string::npos)
        << "the offending predecessor must be named: "
        << result.counterexample;
  }
}

TEST(ParallelEngine, ReservedSentinelInitialStateIsRejected) {
  const CheckResult result =
      run_check(SentinelModel{.sentinel_initial = true}, {});
  EXPECT_EQ(result.verdict, Verdict::kViolation);
  EXPECT_NE(result.counterexample.find("sentinel"), std::string::npos)
      << result.counterexample;
}

// --- oversubscription: more workers than the hardware has ------------------

TEST(EngineScale, OversubscribedDeterminism) {
  McOptions options;  // the pairs=2 composition: the largest tier-1 space
  options.mode = BoxMode::kExclusive;
  options.allow_crash = false;
  options.check_accuracy = true;
  options.check_deadlock = true;
  options.pairs = 2;
  const CheckResult base = check_reduction(options, {.threads = 1});
  ASSERT_TRUE(base.ok()) << base.counterexample;
  const unsigned hw = std::thread::hardware_concurrency();
  const int oversubscribed = 2 * static_cast<int>(hw == 0 ? 2u : hw);
  const CheckResult result =
      check_reduction(options, {.threads = oversubscribed});
  EXPECT_EQ(result.states, base.states) << "threads=" << oversubscribed;
  EXPECT_EQ(result.transitions, base.transitions);
  EXPECT_EQ(result.depth, base.depth);
  EXPECT_EQ(result.verdict, base.verdict);
  EXPECT_EQ(result.counterexample, base.counterexample);
}

// --- the GKK liveness counterexample, mechanically -------------------------

TEST(GkkModel, ForkBasedBoxAdmitsEternalWrongfulSuspicion) {
  const CheckResult result = check_gkk(GkkBoxSemantics::kForkBased);
  EXPECT_FALSE(result.ok())
      << "the Section 3 counterexample must exist as a lasso";
  EXPECT_FALSE(result.counterexample.empty());
  EXPECT_NE(result.counterexample.find("suspects correct q"),
            std::string::npos);
}

TEST(GkkModel, LockoutBoxAdmitsNoSuchLasso) {
  const CheckResult result = check_gkk(GkkBoxSemantics::kLockout);
  EXPECT_TRUE(result.ok())
      << "with the never-exiting eater holding the lock, the witness is "
         "locked out: no infinite wrongful-suspicion run — cycle: "
      << result.counterexample;
}

TEST(AblationModel, SingleInstanceAdmitsEternalWrongfulSuspicion) {
  // Even against a wait-free exclusive box: there is a legal cycle in
  // which the subject keeps completing meals AND the witness keeps
  // judging without a ping — the mechanical counterpart of E9, and the
  // reason the paper's construction needs two instances + the hand-off.
  const CheckResult result = check_ablation();
  EXPECT_FALSE(result.ok()) << "expected the E9 lasso";
  EXPECT_NE(result.counterexample.find("wrongfully suspects"),
            std::string::npos);
  EXPECT_LT(result.states, 200u);
}

TEST(GkkModel, StateSpacesAreTiny) {
  const CheckResult fork_based = check_gkk(GkkBoxSemantics::kForkBased);
  const CheckResult lockout = check_gkk(GkkBoxSemantics::kLockout);
  EXPECT_LT(fork_based.states, 100u);
  EXPECT_LT(lockout.states, 100u);
  EXPECT_GT(fork_based.transitions, fork_based.states);
  // Analyzable models collect the reachable graph; its CSR footprint is
  // reported alongside the seen-set's.
  EXPECT_GT(fork_based.graph_bytes, 0u);
  EXPECT_GT(fork_based.seen_bytes, 0u);
}

// Regression: the engine used to fill wall_ms / seen_bytes / graph_bytes
// differently per exit path — in particular an early stop (violation or
// budget) on an analyzable model reported graph_bytes = 0 even though the
// per-worker edge logs were sitting in memory. Every verdict kind must now
// come back with all three figures populated.
TEST(ModelChecker, ResultMetadataPopulatedOnEveryVerdict) {
  // kOk: clean cover of an analyzable model (lockout box has no lasso).
  const CheckResult ok = check_gkk(GkkBoxSemantics::kLockout);
  ASSERT_EQ(ok.verdict, Verdict::kOk) << ok.counterexample;
  EXPECT_GT(ok.wall_ms, 0.0);
  EXPECT_GT(ok.seen_bytes, 0u);
  EXPECT_GT(ok.graph_bytes, 0u);

  // kViolation: the fork-based lasso found by the analyze hook.
  const CheckResult violation = check_gkk(GkkBoxSemantics::kForkBased);
  ASSERT_EQ(violation.verdict, Verdict::kViolation);
  EXPECT_GT(violation.wall_ms, 0.0);
  EXPECT_GT(violation.seen_bytes, 0u);
  EXPECT_GT(violation.graph_bytes, 0u);

  // kBudgetExceeded: the stop fires after at least one level expanded, so
  // edge logs were collected — their footprint must be reported, not a
  // silent zero.
  const CheckResult budget =
      check_gkk(GkkBoxSemantics::kForkBased, {.max_states = 4});
  ASSERT_EQ(budget.verdict, Verdict::kBudgetExceeded);
  EXPECT_GT(budget.wall_ms, 0.0);
  EXPECT_GT(budget.seen_bytes, 0u);
  EXPECT_GT(budget.graph_bytes, 0u);
}

// --- the CSR reachable-graph view, directly --------------------------------

TEST(ReachViewTest, CsrLookupAndIteration) {
  struct S {
    std::uint32_t bits = 0;
  };
  // Three nodes (keys 5, 9, 12); node 5 -> {9, 12}, node 9 -> {12}, node 12
  // has no successors.
  const ReachView<S> view({5, 9, 12}, {0, 2, 3, 3},
                          {S{9}, S{12}, S{12}},
                          {kLabelNone, kLabelWrongfulSuspicion, kLabelNone});
  ASSERT_EQ(view.node_count(), 3u);
  EXPECT_EQ(view.key(0), 5u);
  EXPECT_EQ(view.key(2), 12u);
  EXPECT_EQ(view.find(9), 1u);
  EXPECT_EQ(view.find(7), ReachView<S>::npos);
  ASSERT_EQ(view.out_degree(0), 2u);
  EXPECT_EQ(view.edge_to(0, 1).bits, 12u);
  EXPECT_EQ(view.edge_label(0, 1), kLabelWrongfulSuspicion);
  EXPECT_EQ(view.out_degree(2), 0u);
  EXPECT_GT(view.bytes(), 0u);
}

// --- state-space reductions ------------------------------------------------

// The soundness of the symmetry quotient rests on the per-pair instance
// flip being an automorphism of the pair transition relation. Check it
// mechanically: for every reachable one-pair state s, in every regime,
// flip(successors(s)) == successors(flip(s)) as labelled edge sets.
TEST(ReductionLevels, FlipIsAutomorphismOfPairSuccessors) {
  for (const BoxMode mode : {BoxMode::kExclusive, BoxMode::kArbitrary}) {
    for (const bool crash : {false, true}) {
      McOptions options;
      options.mode = mode;
      options.allow_crash = crash;
      options.check_accuracy = mode == BoxMode::kExclusive;
      const ReductionModel model(options);
      // Plain BFS over the model API (independent of the engine under test).
      std::set<std::uint64_t> reached;
      std::vector<ReductionModel::State> frontier = model.initial_states();
      for (const auto& s : frontier) reached.insert(s.bits);
      std::vector<Transition<ReductionModel::State>> edges;
      while (!frontier.empty()) {
        std::vector<ReductionModel::State> next;
        for (const auto& s : frontier) {
          edges.clear();
          model.successors(s, edges);
          for (const auto& e : edges) {
            if (reached.insert(e.to.bits).second) next.push_back(e.to);
          }
        }
        frontier = std::move(next);
      }
      auto edge_set = [&](std::uint64_t bits) {
        std::set<std::pair<std::uint64_t, std::uint8_t>> out;
        edges.clear();
        model.successors(ReductionModel::State{bits}, edges);
        for (const auto& e : edges) out.emplace(e.to.bits, e.label);
        return out;
      };
      for (const std::uint64_t bits : reached) {
        std::set<std::pair<std::uint64_t, std::uint8_t>> mapped;
        for (const auto& [to, label] : edge_set(bits)) {
          mapped.emplace(flip_pair_bits(to), label);
        }
        EXPECT_EQ(mapped, edge_set(flip_pair_bits(bits)))
            << "mode=" << static_cast<int>(mode) << " crash=" << crash
            << " state=" << describe_state(bits);
      }
    }
  }
}

// The engine only applies the reduction levels a model's hooks and
// soundness gates support; everything else downgrades predictably.
TEST(ReductionLevels, UnsupportedLevelsDowngrade) {
  // Lasso searches read transitions, which POR prunes: analyzable models
  // never get POR (and GKK/ablation's renaming group is the identity, so
  // their symmetry quotient is a no-op but still "runs").
  const GkkModel gkk(GkkBoxSemantics::kLockout);
  EXPECT_EQ(applied_reduction(gkk, Reduction::kPor), Reduction::kNone);
  EXPECT_EQ(applied_reduction(gkk, Reduction::kSymmetryPor),
            Reduction::kSymmetry);
  // One pair = one POR component: nothing to reduce.
  const ReductionModel one_pair{McOptions{}};
  EXPECT_EQ(applied_reduction(one_pair, Reduction::kPor), Reduction::kNone);
  EXPECT_EQ(applied_reduction(one_pair, Reduction::kSymmetryPor),
            Reduction::kSymmetry);
  McOptions two;
  two.pairs = 2;
  const ReductionModel two_pair(two);
  EXPECT_EQ(applied_reduction(two_pair, Reduction::kSymmetryPor),
            Reduction::kSymmetryPor);
  // The result reports what actually ran.
  const CheckResult r = check_reduction({}, {.reduction = Reduction::kPor});
  EXPECT_EQ(r.reduction, Reduction::kNone);
}

// Every reduction level must return the identical verdict, and the counts
// obey closed forms against the unreduced one-pair space:
//  * kSymmetry stores only orbit representatives (>= 3x fewer states on the
//    composed space — the ISSUE acceptance floor; measured ~6x);
//  * kPor preserves the reachable STATE SET exactly and prunes commuting
//    interleavings: transitions drop from 2*c*t to (c+1)*t;
//  * kSymmetryPor composes flips with the component ordering: exactly the
//    square of the one-pair symmetry count.
TEST(ReductionLevels, TwoPairClosedFormsAtEveryLevel) {
  McOptions one;  // exclusive suffix, no crash
  const CheckResult single = check_reduction(one, {.threads = 2});
  ASSERT_TRUE(single.ok()) << single.counterexample;
  const CheckResult single_sym =
      check_reduction(one, {.threads = 2, .reduction = Reduction::kSymmetry});
  ASSERT_TRUE(single_sym.ok()) << single_sym.counterexample;
  EXPECT_EQ(single_sym.reduction, Reduction::kSymmetry);
  EXPECT_LT(single_sym.states, single.states);

  McOptions two = one;
  two.pairs = 2;
  const CheckResult none = check_reduction(two, {.threads = 4});
  ASSERT_TRUE(none.ok()) << none.counterexample;
  EXPECT_EQ(none.states, single.states * single.states);

  const CheckResult sym =
      check_reduction(two, {.threads = 4, .reduction = Reduction::kSymmetry});
  EXPECT_TRUE(sym.ok()) << sym.counterexample;
  EXPECT_EQ(sym.reduction, Reduction::kSymmetry);
  EXPECT_GE(none.states, 3 * sym.states) << "acceptance floor: >= 3x";

  const CheckResult por =
      check_reduction(two, {.threads = 4, .reduction = Reduction::kPor});
  EXPECT_TRUE(por.ok()) << por.counterexample;
  EXPECT_EQ(por.reduction, Reduction::kPor);
  EXPECT_EQ(por.states, none.states) << "POR must preserve the state set";
  EXPECT_EQ(por.transitions, (single.states + 1) * single.transitions);

  const CheckResult sym_por = check_reduction(
      two, {.threads = 4, .reduction = Reduction::kSymmetryPor});
  EXPECT_TRUE(sym_por.ok()) << sym_por.counterexample;
  EXPECT_EQ(sym_por.reduction, Reduction::kSymmetryPor);
  EXPECT_EQ(sym_por.states, single_sym.states * single_sym.states);
}

// The determinism guarantee holds at every reduction level: identical
// states, transitions, depth and verdict at every thread count.
TEST(ReductionLevels, DeterministicAcrossThreadCountsAtEveryLevel) {
  McOptions two;
  two.pairs = 2;
  const unsigned hw = std::thread::hardware_concurrency();
  const int oversubscribed = 2 * static_cast<int>(hw == 0 ? 2u : hw);
  for (const Reduction level :
       {Reduction::kNone, Reduction::kSymmetry, Reduction::kPor,
        Reduction::kSymmetryPor}) {
    const CheckResult base =
        check_reduction(two, {.threads = 1, .reduction = level});
    ASSERT_TRUE(base.ok()) << base.counterexample;
    for (const int threads : {2, 8, oversubscribed}) {
      const CheckResult result =
          check_reduction(two, {.threads = threads, .reduction = level});
      EXPECT_EQ(result.states, base.states)
          << reduction_name(level) << " threads=" << threads;
      EXPECT_EQ(result.transitions, base.transitions);
      EXPECT_EQ(result.depth, base.depth);
      EXPECT_EQ(result.verdict, base.verdict);
      EXPECT_EQ(result.counterexample, base.counterexample);
      EXPECT_EQ(result.reduction, base.reduction);
    }
  }
}

// A model small enough to count orbits by hand: three identical counters
// 0..2, any counter below 2 may increment. Full space 3^3 = 27 states; the
// canonicalization sorts the digits (the S3 renaming group), so the
// quotient is the multisets of size 3 over {0,1,2}:
//   {000,100,110,111,200,210,211,220,221,222} — 10 orbits.
// Reduced transitions = sum of full out-degrees over the 10 representatives
// (number of digits < 2): 3+3+3+3+2+2+2+1+1+0 = 20; unreduced = 54 (each of
// the 27 states contributes its count of digits < 2, and the digits are
// i.i.d. uniform: 27 * 3 * 2/3). Depth 6 either way (six increments to 222).
struct CounterTripleModel {
  struct State {
    std::uint64_t bits = 0;  // three 2-bit digits
  };

  static std::uint64_t digit(std::uint64_t bits, int i) {
    return (bits >> (2 * i)) & 3;
  }

  std::vector<State> initial_states() const { return {State{0}}; }
  void successors(const State& st, std::vector<Transition<State>>& out) const {
    for (int i = 0; i < 3; ++i) {
      if (digit(st.bits, i) < 2) {
        out.push_back({State{st.bits + (1ull << (2 * i))}, kLabelNone});
      }
    }
  }
  std::string check_state(const State&) const { return {}; }
  std::string check_expansion(const State&,
                              const std::vector<Transition<State>>&) const {
    return {};
  }
  std::string describe(const State& st) const {
    return std::to_string(digit(st.bits, 2)) + std::to_string(digit(st.bits, 1)) +
           std::to_string(digit(st.bits, 0));
  }
  int code_bits() const { return 6; }
  State canonical(const State& st, Reduction) const {
    // Least packed key in the orbit: descending digits toward bit 0.
    std::uint64_t d[3] = {digit(st.bits, 0), digit(st.bits, 1),
                          digit(st.bits, 2)};
    std::sort(d, d + 3, std::greater<>());
    return State{d[0] | (d[1] << 2) | (d[2] << 4)};
  }
};

static_assert(Model<CounterTripleModel>);
static_assert(SymmetricModel<CounterTripleModel>);

TEST(ReductionLevels, HandCountedOrbitsOnTinyModel) {
  const CounterTripleModel model;
  const CheckResult full = run_check(model, {.threads = 1});
  EXPECT_TRUE(full.ok());
  EXPECT_EQ(full.states, 27u);
  EXPECT_EQ(full.transitions, 54u);
  EXPECT_EQ(full.depth, 6u);
  for (const int threads : {1, 4}) {
    const CheckResult reduced = run_check(
        model, {.threads = threads, .reduction = Reduction::kSymmetry});
    EXPECT_TRUE(reduced.ok());
    EXPECT_EQ(reduced.reduction, Reduction::kSymmetry);
    EXPECT_EQ(reduced.states, 10u) << "threads=" << threads;
    EXPECT_EQ(reduced.transitions, 20u);
    EXPECT_EQ(reduced.depth, 6u);
  }
}

// --- the spillable frontier ------------------------------------------------

// A 1-byte budget forces every sealed frontier segment to disk; the
// exploration must come back byte-identical to the unlimited run. Named
// under ParallelEngine so the TSan-instrumented binary picks these up.
TEST(ParallelEngine, SpillPreservesCountsAndVerdict) {
  const GridModel model{.side = 64};
  const CheckResult base = run_check(model, {.threads = 1});
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(base.spilled_bytes, 0u);
  EXPECT_GT(base.frontier_peak_bytes, 0u);
  for (const int threads : {1, 4}) {
    const CheckResult spilled =
        run_check(model, {.threads = threads, .frontier_budget_bytes = 1});
    EXPECT_EQ(spilled.states, base.states) << "threads=" << threads;
    EXPECT_EQ(spilled.transitions, base.transitions);
    EXPECT_EQ(spilled.depth, base.depth);
    EXPECT_EQ(spilled.verdict, base.verdict);
    EXPECT_GT(spilled.spilled_bytes, 0u)
        << "a 1-byte budget must actually spill";
  }
}

TEST(ParallelEngine, SpillComposesWithReductions) {
  McOptions options;  // exclusive one-pair: small but real
  const CheckResult base =
      check_reduction(options, {.threads = 2,
                                .reduction = Reduction::kSymmetry});
  ASSERT_TRUE(base.ok()) << base.counterexample;
  const CheckResult spilled =
      check_reduction(options, {.threads = 2,
                                .reduction = Reduction::kSymmetry,
                                .frontier_budget_bytes = 1});
  EXPECT_EQ(spilled.states, base.states);
  EXPECT_EQ(spilled.transitions, base.transitions);
  EXPECT_EQ(spilled.depth, base.depth);
  EXPECT_EQ(spilled.verdict, base.verdict);
  EXPECT_GT(spilled.spilled_bytes, 0u);
}

// --- the compact codec and seen-set, directly -------------------------------

TEST(Codec, PackedCodeVectorRoundTripsAcrossWordBoundaries) {
  for (const int width : {1, 7, 26, 52, 63, 64}) {
    PackedCodeVector vec(width);
    std::vector<std::uint64_t> expect;
    std::uint64_t x = 0x243f6a8885a308d3ull;  // arbitrary nonzero seed
    for (int i = 0; i < 1000; ++i) {
      x = x * 6364136223846793005ull + 1442695040888963407ull;
      const std::uint64_t code = x & code_mask(width);
      expect.push_back(code);
      vec.push_back(code);
    }
    ASSERT_EQ(vec.size(), expect.size());
    for (std::size_t i = 0; i < expect.size(); ++i) {
      EXPECT_EQ(vec[i], expect[i]) << "width=" << width << " i=" << i;
      // The static reader is what spilled segments are decoded with.
      EXPECT_EQ(PackedCodeVector::read(vec.words(), width, i), expect[i]);
    }
    EXPECT_EQ(vec.word_count(), PackedCodeVector::words_for(1000, width));
  }
}

TEST(Codec, DeltaEdgeLogRoundTripsEdges) {
  DeltaEdgeLog log;
  using Edge = std::pair<std::uint64_t, std::uint8_t>;
  const std::vector<std::vector<Edge>> records = {
      {{0x123456789abull, kLabelNone}, {0x123456789acull, kLabelSubjectMeal}},
      {},
      {{42, kLabelWrongfulSuspicion}},
  };
  const std::vector<std::uint64_t> froms = {0x123456789aaull, 7, 40};
  for (std::size_t n = 0; n < records.size(); ++n) {
    log.append(froms[n], records[n]);
  }
  EXPECT_EQ(log.edges, 3u);
  for (std::size_t n = 0; n < records.size(); ++n) {
    EXPECT_EQ(log.degree(n), records[n].size());
    std::vector<Edge> got;
    log.decode(n, [&](std::uint64_t to, std::uint8_t label) {
      got.emplace_back(to, label);
    });
    EXPECT_EQ(got, records[n]) << "record " << n;
  }
}

// The compact table's insert is a CAS race like the classic table's; same
// contract: exactly one success per distinct code. (ParallelEngine name =
// TSan coverage.)
TEST(ParallelEngine, CompactSeenSetConcurrentInsert) {
  constexpr std::uint64_t kKeys = 200000;
  constexpr int kThreads = 8;
  detail::CompactSeenSet seen(/*code_bits=*/24, kKeys);
  std::atomic<std::uint64_t> inserted{0};
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&seen, &inserted, t] {
      std::uint64_t mine = 0;
      for (std::uint64_t i = 0; i < kKeys; ++i) {
        const std::uint64_t code =
            (i + static_cast<std::uint64_t>(t) * (kKeys / kThreads)) % kKeys;
        if (seen.insert(code)) ++mine;
      }
      inserted.fetch_add(mine);
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(inserted.load(), kKeys);
  for (std::uint64_t code = 0; code < kKeys; code += 997) {
    EXPECT_FALSE(seen.insert(code)) << code;
  }
}

TEST(ParallelEngine, CompactSeenSetGrowthPreservesMembership) {
  // Start at the minimum table and grow through several rebuilds; growth
  // inverts the stored hashes back into codes, so membership must survive.
  detail::CompactSeenSet seen(/*code_bits=*/26, /*expected=*/0);
  constexpr std::uint64_t kKeys = 150000;
  for (std::uint64_t code = 0; code < kKeys; ++code) {
    EXPECT_TRUE(seen.insert(code * 37 % (1u << 26) | 1));
    if (code % 40000 == 39999) seen.reserve_level(code + 1, 50000);
  }
  seen.reserve_level(kKeys, kKeys);
  for (std::uint64_t code = 0; code < kKeys; code += 13) {
    EXPECT_FALSE(seen.insert(code * 37 % (1u << 26) | 1)) << code;
  }
}

TEST(ParallelEngine, SeenIndexPicksTheSmallerTable) {
  // 26-bit codes with an honest hint: the 4-byte-entry table wins.
  EXPECT_TRUE(detail::SeenIndex(26, 516961).compact());
  // 52-bit codes need >= 2^24 compact slots (remainder must fit 31 bits);
  // without a size hint the classic table is smaller, with the real 8.3M
  // hint the compact one is (64MB vs 268MB).
  EXPECT_FALSE(detail::SeenIndex(52, 0).compact());
  EXPECT_TRUE(detail::SeenIndex(52, 8340544).compact());
  // Full-width keys can only use the classic table.
  EXPECT_FALSE(detail::SeenIndex(64, 1000).compact());
}

// --- campaign pre-sizing under reductions ----------------------------------

// Regression: sweeps used to forward the full-space state count into
// CheckOptions::expected_states even for symmetry-reduced runs, pre-sizing
// the seen-set several times larger than its fill ever reaches. JobMeta now
// carries both counts and expected_for() picks per reduction level.
TEST(ModelChecker, ExpectedStatesHintHonorsReductionLevel) {
  harness::JobMeta meta;
  meta.expected_states = 516961;
  meta.expected_states_symmetry = 83436;
  EXPECT_EQ(meta.expected_for(false), 516961u);
  EXPECT_EQ(meta.expected_for(true), 83436u);
  EXPECT_EQ(harness::JobMeta{.expected_states = 719}.expected_for(true), 719u)
      << "unknown reduced count falls back to the full count";

  McOptions two;
  two.pairs = 2;
  const CheckResult oversized = check_reduction(
      two, {.threads = 2, .expected_states = meta.expected_for(false),
            .reduction = Reduction::kSymmetry});
  const CheckResult sized = check_reduction(
      two, {.threads = 2, .expected_states = meta.expected_for(true),
            .reduction = Reduction::kSymmetry});
  ASSERT_TRUE(sized.ok()) << sized.counterexample;
  EXPECT_EQ(sized.states, oversized.states);
  EXPECT_EQ(sized.transitions, oversized.transitions);
  EXPECT_EQ(sized.verdict, oversized.verdict);
  EXPECT_LT(sized.seen_bytes, oversized.seen_bytes)
      << "the reduced hint must shrink the table";
}

}  // namespace
}  // namespace wfd::mc
