// Model-checker tests: exhaustive verification of the reduction's lemma
// structure over every interleaving of the abstract model, in all three
// regimes (mistake prefix, converged suffix, subject crash) — all driven
// through the unified mc::run_check / mc::CheckResult API — plus the
// parallel engine's determinism guarantee (identical state count, depth
// and verdict at every thread count).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "mc/ablation_model.hpp"
#include "mc/engine.hpp"
#include "mc/gkk_model.hpp"
#include "mc/reduction_model.hpp"

namespace wfd::mc {
namespace {

TEST(ModelChecker, ExclusiveSuffixAllLemmasHold) {
  McOptions options;
  options.mode = BoxMode::kExclusive;
  options.allow_crash = false;
  options.check_accuracy = true;
  options.check_deadlock = true;
  const CheckResult result = check_reduction(options);
  EXPECT_TRUE(result.ok()) << result.counterexample;
  EXPECT_GT(result.states, 100u);
}

TEST(ModelChecker, ArbitraryModeSafetyLemmasHold) {
  // During the mistake prefix anything can overlap; the safety lemmas
  // (2, 3, 4, 5, 8, 9) must hold regardless. Accuracy is a suffix
  // property, so it is not checked here.
  McOptions options;
  options.mode = BoxMode::kArbitrary;
  options.allow_crash = false;
  options.check_accuracy = false;
  options.check_deadlock = true;
  const CheckResult result = check_reduction(options);
  EXPECT_TRUE(result.ok()) << result.counterexample;
}

TEST(ModelChecker, CrashRegimeSafeAndComplete) {
  McOptions options;
  options.mode = BoxMode::kExclusive;
  options.allow_crash = true;
  options.check_accuracy = true;
  options.check_deadlock = true;
  const CheckResult result = check_reduction(options);
  EXPECT_TRUE(result.ok()) << result.counterexample;
}

TEST(ModelChecker, ArbitraryWithCrash) {
  McOptions options;
  options.mode = BoxMode::kArbitrary;
  options.allow_crash = true;
  options.check_accuracy = false;
  options.check_deadlock = true;
  const CheckResult result = check_reduction(options);
  EXPECT_TRUE(result.ok()) << result.counterexample;
}

TEST(ModelChecker, StateSpaceIsModest) {
  McOptions options;
  options.mode = BoxMode::kArbitrary;
  options.allow_crash = true;
  options.check_accuracy = false;
  const CheckResult result = check_reduction(options);
  EXPECT_TRUE(result.ok()) << result.counterexample;
  // The abstraction stays tractable — document the scale.
  EXPECT_LT(result.states, 1000000u);
  EXPECT_GT(result.transitions, result.states);
}

TEST(ModelChecker, BudgetExhaustionReported) {
  const CheckResult result = check_reduction({}, {.max_states = 10});
  EXPECT_FALSE(result.ok());
  // A budget stop is an aborted search, not a property violation — it must
  // be distinguishable from a real counterexample.
  EXPECT_EQ(result.verdict, Verdict::kBudgetExceeded);
  EXPECT_STREQ(verdict_name(result.verdict), "budget_exceeded");
  EXPECT_NE(result.counterexample.find("budget"), std::string::npos);
}

TEST(ModelChecker, DescribeStateIsReadable) {
  const std::string text = describe_state(0);
  EXPECT_NE(text.find("w0=thinking"), std::string::npos);
  EXPECT_NE(text.find("s1=thinking"), std::string::npos);
}

TEST(ModelChecker, ResultCarriesRunMetadata) {
  const CheckResult result = check_reduction({}, {.threads = 2});
  EXPECT_EQ(result.threads, 2);
  EXPECT_GE(result.wall_ms, 0.0);
  EXPECT_GT(result.depth, 0u);
  EXPECT_EQ(result.verdict, Verdict::kOk);
  // The reduction model collects no graph, so only the seen-set costs
  // memory; both figures are reported for capacity planning.
  EXPECT_GT(result.seen_bytes, 0u);
  EXPECT_EQ(result.graph_bytes, 0u);
}

// The reachable space of the two-pair composition is exactly the product
// of the per-pair spaces (the pairs share no variables), and its BFS
// diameter is the sum — a strong end-to-end check of both the composed
// model and the engine's level accounting.
TEST(ModelChecker, TwoPairCompositionIsProductOfOnePair) {
  McOptions one;  // exclusive suffix, no crash
  const CheckResult single = check_reduction(one, {.threads = 1});
  ASSERT_TRUE(single.ok()) << single.counterexample;

  McOptions two = one;
  two.pairs = 2;
  const CheckResult seq = check_reduction(two, {.threads = 1});
  EXPECT_TRUE(seq.ok()) << seq.counterexample;
  EXPECT_EQ(seq.states, single.states * single.states);
  EXPECT_EQ(seq.transitions, 2 * single.states * single.transitions);
  EXPECT_EQ(seq.depth, 2 * single.depth);

  const CheckResult par = check_reduction(two, {.threads = 4});
  EXPECT_EQ(par.states, seq.states);
  EXPECT_EQ(par.transitions, seq.transitions);
  EXPECT_EQ(par.depth, seq.depth);
  EXPECT_EQ(par.ok(), seq.ok());
}

// --- the parallel engine's determinism guarantee ---------------------------

TEST(ParallelEngine, DeterministicAcrossThreadCounts) {
  for (const BoxMode mode : {BoxMode::kExclusive, BoxMode::kArbitrary}) {
    for (const bool crash : {false, true}) {
      McOptions options;
      options.mode = mode;
      options.allow_crash = crash;
      options.check_accuracy = mode == BoxMode::kExclusive;
      options.check_deadlock = true;
      const CheckResult base = check_reduction(options, {.threads = 1});
      const int oversubscribed =
          2 * static_cast<int>(std::thread::hardware_concurrency() == 0
                                   ? 2u
                                   : std::thread::hardware_concurrency());
      for (const int threads : {2, 4, 8, oversubscribed}) {
        const CheckResult result =
            check_reduction(options, {.threads = threads});
        EXPECT_EQ(result.states, base.states)
            << "mode=" << static_cast<int>(mode) << " crash=" << crash
            << " threads=" << threads;
        EXPECT_EQ(result.transitions, base.transitions);
        EXPECT_EQ(result.depth, base.depth);
        EXPECT_EQ(result.ok(), base.ok());
        EXPECT_EQ(result.counterexample, base.counterexample);
        EXPECT_EQ(result.threads, threads);
      }
    }
  }
}

// A synthetic model with wide BFS levels: the monotone lattice paths of a
// K x K grid. Exercises run_check against a model defined entirely outside
// src/mc — the concept is the whole contract — with closed-form state,
// transition and depth counts.
struct GridModel {
  struct State {
    std::uint64_t bits = 0;
  };
  std::uint64_t side = 64;

  std::vector<State> initial_states() const { return {State{0}}; }

  void successors(const State& st, std::vector<Transition<State>>& out) const {
    const std::uint64_t x = st.bits % side;
    const std::uint64_t y = st.bits / side;
    if (x + 1 < side) out.push_back({State{st.bits + 1}, kLabelNone});
    if (y + 1 < side) out.push_back({State{st.bits + side}, kLabelNone});
  }

  std::string check_state(const State&) const { return {}; }
  std::string check_expansion(const State&,
                              const std::vector<Transition<State>>&) const {
    return {};
  }
  std::string describe(const State& st) const {
    return "(" + std::to_string(st.bits % side) + "," +
           std::to_string(st.bits / side) + ")";
  }
};

static_assert(Model<GridModel>);

TEST(ParallelEngine, GenericGridModelHasClosedFormCounts) {
  const GridModel model{.side = 64};
  const CheckResult base = run_check(model, {.threads = 1});
  EXPECT_TRUE(base.ok());
  EXPECT_EQ(base.states, 64u * 64u);
  EXPECT_EQ(base.transitions, 2u * 64u * 63u);  // 2K(K-1) lattice edges
  EXPECT_EQ(base.depth, 126u);                  // 2(K-1) anti-diagonals
  for (const int threads : {2, 4, 8}) {
    const CheckResult result = run_check(model, {.threads = threads});
    EXPECT_EQ(result.states, base.states) << "threads=" << threads;
    EXPECT_EQ(result.transitions, base.transitions);
    EXPECT_EQ(result.depth, base.depth);
  }
}

TEST(ParallelEngine, BudgetStopIsDeterministicToo) {
  for (const int threads : {1, 2, 4}) {
    const CheckResult result =
        run_check(GridModel{.side = 64}, {.threads = threads,
                                          .max_states = 100});
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.verdict, Verdict::kBudgetExceeded) << "threads=" << threads;
    EXPECT_NE(result.counterexample.find("budget"), std::string::npos);
    // Complete levels only: 1 + 2 + ... + 13 = 91 states, the 14th level
    // would cross the 100-state budget.
    EXPECT_EQ(result.states, 91u) << "threads=" << threads;
  }
}

// Exercises the lock-free seen-set directly: every thread races to insert
// an overlapping key range, and exactly one insertion per distinct key may
// succeed. Named under ParallelEngine so the TSan-instrumented test binary
// picks it up (tests/CMakeLists.txt runs --gtest_filter=ParallelEngine.*).
TEST(ParallelEngine, LockFreeSeenSetConcurrentInsert) {
  constexpr std::uint64_t kKeys = 200000;
  constexpr int kThreads = 8;
  detail::SeenSet seen(kKeys);
  std::atomic<std::uint64_t> inserted{0};
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&seen, &inserted, t] {
      std::uint64_t mine = 0;
      // Each thread walks the full key range from a different offset, so
      // every key is contended by all threads.
      for (std::uint64_t i = 0; i < kKeys; ++i) {
        const std::uint64_t key =
            (i + static_cast<std::uint64_t>(t) * (kKeys / kThreads)) % kKeys;
        if (seen.insert(key)) ++mine;
      }
      inserted.fetch_add(mine);
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(inserted.load(), kKeys);
  // Re-inserting any key now fails.
  for (std::uint64_t key = 0; key < kKeys; key += 997) {
    EXPECT_FALSE(seen.insert(key)) << key;
  }
}

// A model that (wrongly) packs a state equal to the seen-set's reserved
// empty-slot sentinel (~0). The engine must refuse it with a deterministic
// violation instead of silently conflating it with "not seen yet".
struct SentinelModel {
  struct State {
    std::uint64_t bits = 0;
  };
  bool sentinel_initial = false;

  std::vector<State> initial_states() const {
    if (sentinel_initial) return {State{~0ull}};
    return {State{0}};
  }
  void successors(const State& st, std::vector<Transition<State>>& out) const {
    if (st.bits < 3) out.push_back({State{st.bits + 1}, kLabelNone});
    if (st.bits == 3) out.push_back({State{~0ull}, kLabelNone});
  }
  std::string check_state(const State&) const { return {}; }
  std::string check_expansion(const State&,
                              const std::vector<Transition<State>>&) const {
    return {};
  }
  std::string describe(const State& st) const {
    return "s" + std::to_string(st.bits);
  }
};

static_assert(Model<SentinelModel>);

TEST(ParallelEngine, ReservedSentinelKeyIsRejectedNotConflated) {
  for (const int threads : {1, 4}) {
    const CheckResult result = run_check(SentinelModel{}, {.threads = threads});
    EXPECT_EQ(result.verdict, Verdict::kViolation) << "threads=" << threads;
    EXPECT_NE(result.counterexample.find("sentinel"), std::string::npos)
        << result.counterexample;
    EXPECT_NE(result.counterexample.find("s3"), std::string::npos)
        << "the offending predecessor must be named: "
        << result.counterexample;
  }
}

TEST(ParallelEngine, ReservedSentinelInitialStateIsRejected) {
  const CheckResult result =
      run_check(SentinelModel{.sentinel_initial = true}, {});
  EXPECT_EQ(result.verdict, Verdict::kViolation);
  EXPECT_NE(result.counterexample.find("sentinel"), std::string::npos)
      << result.counterexample;
}

// --- oversubscription: more workers than the hardware has ------------------

TEST(EngineScale, OversubscribedDeterminism) {
  McOptions options;  // the pairs=2 composition: the largest tier-1 space
  options.mode = BoxMode::kExclusive;
  options.allow_crash = false;
  options.check_accuracy = true;
  options.check_deadlock = true;
  options.pairs = 2;
  const CheckResult base = check_reduction(options, {.threads = 1});
  ASSERT_TRUE(base.ok()) << base.counterexample;
  const unsigned hw = std::thread::hardware_concurrency();
  const int oversubscribed = 2 * static_cast<int>(hw == 0 ? 2u : hw);
  const CheckResult result =
      check_reduction(options, {.threads = oversubscribed});
  EXPECT_EQ(result.states, base.states) << "threads=" << oversubscribed;
  EXPECT_EQ(result.transitions, base.transitions);
  EXPECT_EQ(result.depth, base.depth);
  EXPECT_EQ(result.verdict, base.verdict);
  EXPECT_EQ(result.counterexample, base.counterexample);
}

// --- the GKK liveness counterexample, mechanically -------------------------

TEST(GkkModel, ForkBasedBoxAdmitsEternalWrongfulSuspicion) {
  const CheckResult result = check_gkk(GkkBoxSemantics::kForkBased);
  EXPECT_FALSE(result.ok())
      << "the Section 3 counterexample must exist as a lasso";
  EXPECT_FALSE(result.counterexample.empty());
  EXPECT_NE(result.counterexample.find("suspects correct q"),
            std::string::npos);
}

TEST(GkkModel, LockoutBoxAdmitsNoSuchLasso) {
  const CheckResult result = check_gkk(GkkBoxSemantics::kLockout);
  EXPECT_TRUE(result.ok())
      << "with the never-exiting eater holding the lock, the witness is "
         "locked out: no infinite wrongful-suspicion run — cycle: "
      << result.counterexample;
}

TEST(AblationModel, SingleInstanceAdmitsEternalWrongfulSuspicion) {
  // Even against a wait-free exclusive box: there is a legal cycle in
  // which the subject keeps completing meals AND the witness keeps
  // judging without a ping — the mechanical counterpart of E9, and the
  // reason the paper's construction needs two instances + the hand-off.
  const CheckResult result = check_ablation();
  EXPECT_FALSE(result.ok()) << "expected the E9 lasso";
  EXPECT_NE(result.counterexample.find("wrongfully suspects"),
            std::string::npos);
  EXPECT_LT(result.states, 200u);
}

TEST(GkkModel, StateSpacesAreTiny) {
  const CheckResult fork_based = check_gkk(GkkBoxSemantics::kForkBased);
  const CheckResult lockout = check_gkk(GkkBoxSemantics::kLockout);
  EXPECT_LT(fork_based.states, 100u);
  EXPECT_LT(lockout.states, 100u);
  EXPECT_GT(fork_based.transitions, fork_based.states);
  // Analyzable models collect the reachable graph; its CSR footprint is
  // reported alongside the seen-set's.
  EXPECT_GT(fork_based.graph_bytes, 0u);
  EXPECT_GT(fork_based.seen_bytes, 0u);
}

// Regression: the engine used to fill wall_ms / seen_bytes / graph_bytes
// differently per exit path — in particular an early stop (violation or
// budget) on an analyzable model reported graph_bytes = 0 even though the
// per-worker edge logs were sitting in memory. Every verdict kind must now
// come back with all three figures populated.
TEST(ModelChecker, ResultMetadataPopulatedOnEveryVerdict) {
  // kOk: clean cover of an analyzable model (lockout box has no lasso).
  const CheckResult ok = check_gkk(GkkBoxSemantics::kLockout);
  ASSERT_EQ(ok.verdict, Verdict::kOk) << ok.counterexample;
  EXPECT_GT(ok.wall_ms, 0.0);
  EXPECT_GT(ok.seen_bytes, 0u);
  EXPECT_GT(ok.graph_bytes, 0u);

  // kViolation: the fork-based lasso found by the analyze hook.
  const CheckResult violation = check_gkk(GkkBoxSemantics::kForkBased);
  ASSERT_EQ(violation.verdict, Verdict::kViolation);
  EXPECT_GT(violation.wall_ms, 0.0);
  EXPECT_GT(violation.seen_bytes, 0u);
  EXPECT_GT(violation.graph_bytes, 0u);

  // kBudgetExceeded: the stop fires after at least one level expanded, so
  // edge logs were collected — their footprint must be reported, not a
  // silent zero.
  const CheckResult budget =
      check_gkk(GkkBoxSemantics::kForkBased, {.max_states = 4});
  ASSERT_EQ(budget.verdict, Verdict::kBudgetExceeded);
  EXPECT_GT(budget.wall_ms, 0.0);
  EXPECT_GT(budget.seen_bytes, 0u);
  EXPECT_GT(budget.graph_bytes, 0u);
}

// --- the CSR reachable-graph view, directly --------------------------------

TEST(ReachViewTest, CsrLookupAndIteration) {
  struct S {
    std::uint32_t bits = 0;
  };
  // Three nodes (keys 5, 9, 12); node 5 -> {9, 12}, node 9 -> {12}, node 12
  // has no successors.
  const ReachView<S> view({5, 9, 12}, {0, 2, 3, 3},
                          {S{9}, S{12}, S{12}},
                          {kLabelNone, kLabelWrongfulSuspicion, kLabelNone});
  ASSERT_EQ(view.node_count(), 3u);
  EXPECT_EQ(view.key(0), 5u);
  EXPECT_EQ(view.key(2), 12u);
  EXPECT_EQ(view.find(9), 1u);
  EXPECT_EQ(view.find(7), ReachView<S>::npos);
  ASSERT_EQ(view.out_degree(0), 2u);
  EXPECT_EQ(view.edge_to(0, 1).bits, 12u);
  EXPECT_EQ(view.edge_label(0, 1), kLabelWrongfulSuspicion);
  EXPECT_EQ(view.out_degree(2), 0u);
  EXPECT_GT(view.bytes(), 0u);
}

}  // namespace
}  // namespace wfd::mc
