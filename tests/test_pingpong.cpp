// Tests for the ping-pong (query/response) <>P implementation, and a
// cross-implementation check: both native detectors drive the wait-free
// dining algorithm equally well.
#include <gtest/gtest.h>

#include <memory>

#include "detect/pingpong_detector.hpp"
#include "detect/properties.hpp"
#include "dining/client.hpp"
#include "dining/instance.hpp"
#include "dining/monitors.hpp"
#include "graph/conflict_graph.hpp"
#include "sim/engine.hpp"

namespace wfd::detect {
namespace {

struct PingPongRig {
  sim::Engine engine;
  std::vector<sim::ComponentHost*> hosts;
  std::vector<std::shared_ptr<PingPongDetector>> detectors;

  PingPongRig(std::uint32_t n, std::uint64_t seed, sim::Time gst,
              sim::Time delta)
      : engine(sim::EngineConfig{.seed = seed}) {
    for (sim::ProcessId p = 0; p < n; ++p) {
      auto host = std::make_unique<sim::ComponentHost>();
      hosts.push_back(host.get());
      engine.add_process(std::move(host));
    }
    for (sim::ProcessId p = 0; p < n; ++p) {
      auto detector = std::make_shared<PingPongDetector>(
          p, n, PingPongConfig{.port = 110});
      detectors.push_back(detector);
      hosts[p]->add_component(detector, {110});
    }
    engine.set_delay_model(
        std::make_unique<sim::PartialSynchronyDelay>(gst, delta, gst));
    engine.set_scheduler(std::make_unique<sim::RoundRobinScheduler>());
  }
};

TEST(PingPongDetector, StrongCompleteness) {
  PingPongRig rig(3, 1, /*gst=*/200, /*delta=*/3);
  rig.engine.schedule_crash(2, 600);
  rig.engine.init();
  rig.engine.run(30000);
  EXPECT_TRUE(rig.detectors[0]->suspects(2));
  EXPECT_TRUE(rig.detectors[1]->suspects(2));
  rig.engine.run(10000);
  EXPECT_TRUE(rig.detectors[0]->suspects(2)) << "suspicion must be permanent";
}

TEST(PingPongDetector, EventualStrongAccuracy) {
  PingPongRig rig(3, 2, /*gst=*/500, /*delta=*/3);
  rig.engine.init();
  rig.engine.run(40000);
  for (sim::ProcessId p = 0; p < 3; ++p) {
    for (sim::ProcessId q = 0; q < 3; ++q) {
      if (p != q) {
        EXPECT_FALSE(rig.detectors[p]->suspects(q)) << p << "->" << q;
      }
    }
  }
  const auto flips = rig.detectors[0]->transition_count();
  rig.engine.run(20000);
  EXPECT_EQ(rig.detectors[0]->transition_count(), flips);
}

TEST(PingPongDetector, AdaptsTimeoutOnMistake) {
  sim::Engine engine(sim::EngineConfig{.seed = 3});
  std::vector<std::shared_ptr<PingPongDetector>> detectors;
  for (sim::ProcessId p = 0; p < 2; ++p) {
    auto det = std::make_shared<PingPongDetector>(
        p, 2,
        PingPongConfig{.port = 110, .initial_timeout = 3,
                       .timeout_increment = 10});
    detectors.push_back(det);
    auto host = std::make_unique<sim::ComponentHost>();
    host->add_component(det, {110});
    engine.add_process(std::move(host));
  }
  engine.set_delay_model(std::make_unique<sim::UniformDelay>(5, 20));
  engine.set_scheduler(std::make_unique<sim::RoundRobinScheduler>());
  engine.init();
  engine.run(8000);
  EXPECT_GT(detectors[0]->current_timeout(1), 3u);
  EXPECT_GT(detectors[0]->transition_count(), 0u);
}

TEST(PingPongDetector, GradedEventuallyPerfectByMonitor) {
  PingPongRig rig(3, 4, /*gst=*/300, /*delta=*/3);
  DetectorHistory history(0);
  rig.engine.trace().subscribe(
      [&history](const sim::Event& e) { history.on_event(e); });
  for (sim::ProcessId p = 0; p < 3; ++p) {
    for (sim::ProcessId q = 0; q < 3; ++q) {
      if (p != q) history.set_initial(p, q, false);
    }
  }
  rig.engine.schedule_crash(1, 1500);
  rig.engine.init();
  rig.engine.run(40000);
  EXPECT_TRUE(history.strong_completeness(rig.engine).holds);
  EXPECT_TRUE(history.eventual_strong_accuracy(rig.engine).holds);
}

TEST(PingPongDetector, DrivesWaitFreeDining) {
  // Swap the oracle for the ping-pong implementation inside the dining
  // algorithm: same wait-freedom and convergence guarantees.
  PingPongRig rig(3, 5, /*gst=*/400, /*delta=*/3);
  dining::DiningInstanceConfig config;
  config.port = 10;
  config.tag = 1;
  config.members = {0, 1, 2};
  config.graph = graph::make_ring(3);
  std::vector<const FailureDetector*> fds;
  for (const auto& d : rig.detectors) fds.push_back(d.get());
  auto instance = dining::build_dining_instance(rig.hosts, config, fds);
  std::vector<std::shared_ptr<dining::DinerClient>> clients;
  for (std::uint32_t i = 0; i < 3; ++i) {
    auto client = std::make_shared<dining::DinerClient>(
        *instance.diners[i], dining::ClientConfig{});
    rig.hosts[i]->add_component(client, {});
    clients.push_back(client);
  }
  dining::DiningMonitor monitor(rig.engine, config);
  dining::DiningMonitor::attach(rig.engine, monitor);
  rig.engine.schedule_crash(2, 3000);
  rig.engine.init();
  rig.engine.run(120000);
  std::string detail;
  EXPECT_TRUE(monitor.wait_free(rig.engine.now(), 30000, &detail)) << detail;
  EXPECT_EQ(monitor.violations_since(rig.engine.now() - 50000), 0u);
}

}  // namespace
}  // namespace wfd::detect
