// Cross-module composition tests: the pieces of this library are designed
// to stack — repeated consensus instances over one detector, consensus
// over the S oracle (the weaker CT requirement), the fairness wrapper over
// the timestamp dining family, and dining driven by the detector that was
// itself extracted from dining.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "consensus/consensus.hpp"
#include "detect/oracle.hpp"
#include "dining/fair_wrapper.hpp"
#include "dining/timestamp_diner.hpp"
#include "graph/conflict_graph.hpp"
#include "harness/rig.hpp"
#include "reduce/extraction.hpp"

namespace wfd {
namespace {

using harness::Rig;
using harness::RigOptions;

TEST(Composition, RepeatedConsensusInstances) {
  // Three sequential decisions (e.g. slots of a replicated log), each its
  // own instance on its own port, sharing one detector per process.
  Rig rig(RigOptions{.seed = 81, .n = 3, .detector_lag = 25});
  constexpr int kInstances = 3;
  std::vector<std::vector<std::shared_ptr<consensus::ConsensusParticipant>>>
      slots(kInstances);
  for (int slot = 0; slot < kInstances; ++slot) {
    consensus::ConsensusConfig config;
    config.port = static_cast<sim::Port>(500 + slot);
    config.members = {0, 1, 2};
    for (std::uint32_t m = 0; m < 3; ++m) {
      auto participant = std::make_shared<consensus::ConsensusParticipant>(
          config, m, rig.detectors[m].get());
      rig.hosts[m]->add_component(participant, {config.port});
      slots[slot].push_back(participant);
    }
  }
  for (int slot = 0; slot < kInstances; ++slot) {
    for (std::uint32_t m = 0; m < 3; ++m) {
      slots[slot][m]->propose(100 * (slot + 1) + m);
    }
  }
  rig.engine.schedule_crash(2, 4000);
  rig.engine.init();
  const bool done = rig.engine.run_until(
      [&] {
        for (int slot = 0; slot < kInstances; ++slot) {
          for (std::uint32_t m = 0; m < 2; ++m) {
            if (!slots[slot][m]->decided()) return false;
          }
        }
        return true;
      },
      1000000, 128);
  ASSERT_TRUE(done);
  for (int slot = 0; slot < kInstances; ++slot) {
    EXPECT_EQ(slots[slot][0]->decision(), slots[slot][1]->decision())
        << "slot " << slot;
    // Validity per slot: decided value belongs to that slot's proposals.
    const std::uint64_t value = slots[slot][0]->decision();
    EXPECT_GE(value, 100u * (slot + 1));
    EXPECT_LE(value, 100u * (slot + 1) + 2);
  }
}

TEST(Composition, ConsensusOnStrongDetector) {
  // The Chandra-Toueg algorithm needs only S-grade guarantees for safety
  // plus eventual coordinator trust for termination; run it on OracleStrong
  // with perpetual mistakes against a non-immune, non-coordinator process.
  sim::Engine engine(sim::EngineConfig{.seed = 82});
  std::vector<sim::ComponentHost*> hosts;
  for (sim::ProcessId p = 0; p < 3; ++p) {
    auto host = std::make_unique<sim::ComponentHost>();
    hosts.push_back(host.get());
    engine.add_process(std::move(host));
  }
  std::vector<std::shared_ptr<detect::OracleStrong>> oracles;
  // Everyone perpetually (and wrongly) suspects process 2; process 0 —
  // the round-0 coordinator — is immune (perpetual weak accuracy).
  std::vector<detect::MistakeWindow> mistakes{{0, 2, 10, ~0ull},
                                              {1, 2, 10, ~0ull}};
  for (sim::ProcessId p = 0; p < 3; ++p) {
    auto oracle = std::make_shared<detect::OracleStrong>(
        engine, p, 3, /*immune=*/0, 25, mistakes, 0xFD);
    hosts[p]->add_component(oracle, {});
    oracles.push_back(oracle);
  }
  consensus::ConsensusConfig config;
  config.port = 500;
  config.members = {0, 1, 2};
  std::vector<std::shared_ptr<consensus::ConsensusParticipant>> participants;
  for (std::uint32_t m = 0; m < 3; ++m) {
    auto participant = std::make_shared<consensus::ConsensusParticipant>(
        config, m, oracles[m].get());
    hosts[m]->add_component(participant, {config.port});
    participants.push_back(participant);
  }
  for (std::uint32_t m = 0; m < 3; ++m) participants[m]->propose(m + 1);
  engine.init();
  const bool done = engine.run_until(
      [&] {
        return participants[0]->decided() && participants[1]->decided() &&
               participants[2]->decided();
      },
      500000, 64);
  ASSERT_TRUE(done) << "S-grade accuracy must suffice for termination";
  std::set<std::uint64_t> decisions{participants[0]->decision(),
                                    participants[1]->decision(),
                                    participants[2]->decision()};
  EXPECT_EQ(decisions.size(), 1u);
}

TEST(Composition, FairWrapperOverTimestampDining) {
  // The wrapper is service-agnostic: stack it on the RA-family algorithm.
  Rig rig(RigOptions{.seed = 83, .n = 3});
  dining::DiningInstanceConfig inner_config;
  inner_config.port = 10;
  inner_config.tag = 1;
  inner_config.members = {0, 1, 2};
  inner_config.graph = graph::make_ring(3);
  std::vector<const detect::FailureDetector*> fds;
  for (const auto& d : rig.detectors) fds.push_back(d.get());
  auto inner = dining::build_timestamp_instance(rig.hosts, inner_config, fds);

  dining::DiningInstanceConfig wrap_config = inner_config;
  wrap_config.port = 20;
  wrap_config.tag = 2;
  std::vector<std::shared_ptr<dining::FairDiner>> fair;
  for (std::uint32_t i = 0; i < 3; ++i) {
    auto diner = std::make_shared<dining::FairDiner>(
        wrap_config, i, *inner.diners[i], rig.detectors[i].get());
    rig.hosts[i]->add_component(diner, {20});
    fair.push_back(diner);
  }
  std::vector<std::shared_ptr<dining::DinerClient>> clients;
  for (std::uint32_t i = 0; i < 3; ++i) {
    auto client = std::make_shared<dining::DinerClient>(*fair[i],
                                                        dining::ClientConfig{});
    rig.hosts[i]->add_component(client, {});
    clients.push_back(client);
  }
  dining::DiningMonitor monitor(rig.engine, wrap_config);
  dining::DiningMonitor::attach(rig.engine, monitor);
  rig.engine.init();
  rig.engine.run(100000);
  EXPECT_TRUE(monitor.perpetual_exclusion());
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_GT(monitor.meals(i), 50u) << "diner " << i;
  }
  EXPECT_LE(monitor.max_overtakes(40000), 2u);
}

TEST(Composition, DiningDrivenByExtractedDetector) {
  // Full circle: extract <>P from dining boxes, then use THAT detector as
  // the oracle of a fresh wait-free dining instance. (The theorem's
  // equivalence, composed in the other direction.)
  Rig rig(RigOptions{.seed = 84, .n = 2, .detector_lag = 25});
  reduce::WaitFreeBoxFactory factory(
      [&rig](sim::ProcessId p) { return rig.detectors[p].get(); });
  auto extraction = reduce::build_full_extraction(rig.hosts, factory, {});

  dining::DiningInstanceConfig config;
  config.port = 900;
  config.tag = 99;
  config.members = {0, 1};
  config.graph = graph::make_pair();
  std::vector<const detect::FailureDetector*> fds{
      extraction.detectors[0].get(), extraction.detectors[1].get()};
  auto instance = dining::build_dining_instance(rig.hosts, config, fds);
  std::vector<std::shared_ptr<dining::DinerClient>> clients;
  for (std::uint32_t i = 0; i < 2; ++i) {
    auto client = std::make_shared<dining::DinerClient>(*instance.diners[i],
                                                        dining::ClientConfig{});
    rig.hosts[i]->add_component(client, {});
    clients.push_back(client);
  }
  dining::DiningMonitor monitor(rig.engine, config);
  dining::DiningMonitor::attach(rig.engine, monitor);
  rig.engine.schedule_crash(1, 10000);
  rig.engine.init();
  rig.engine.run(300000);
  std::string detail;
  EXPECT_TRUE(monitor.wait_free(rig.engine.now(), 60000, &detail)) << detail;
  EXPECT_GT(monitor.meals(0), 100u)
      << "survivor must keep eating, unblocked by the extracted suspicion";
}

}  // namespace
}  // namespace wfd
