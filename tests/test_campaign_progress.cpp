// Campaign-runner shutdown discipline: the progress monitor is a dedicated
// thread referencing the run_campaign stack frame, so its lifetime must be
// strictly inside the call on EVERY exit path — normal completion, an early
// verdict, or a throwing job. These tests race tiny campaigns against
// millisecond heartbeats (the regression surface for the monitor-join
// ordering) and pin the exception contract: a throwing `fn` aborts the
// campaign, is rethrown on the calling thread only after all threads are
// joined, and never reaches std::terminate. The TSan-instrumented copy of
// this suite (campaign_progress_tsan) runs the same races under the
// thread sanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "harness/campaign.hpp"

namespace wfd {
namespace {

TEST(CampaignProgress, FinalCallbackSeesEveryCompletion) {
  // Many tiny campaigns x a 1 ms heartbeat: the monitor wakes mid-teardown
  // constantly, which is exactly where a missing join ordering turns into a
  // use-after-return on the frame's locals.
  for (int round = 0; round < 60; ++round) {
    const std::size_t jobs = 1 + static_cast<std::size_t>(round % 7);
    std::vector<int> configs(jobs, 1);
    std::atomic<std::size_t> calls{0};
    harness::CampaignProgress last{};
    harness::ProgressOptions progress;
    progress.interval_ms = 1;
    progress.on_progress = [&](const harness::CampaignProgress& p) {
      calls.fetch_add(1);
      last = p;  // monitor thread only; joined before run_campaign returns
    };
    const std::vector<int> results = harness::run_campaign(
        configs, [](int value) { return value + 1; }, 4, progress);
    ASSERT_EQ(results.size(), jobs);
    for (const int r : results) EXPECT_EQ(r, 2);
    EXPECT_GE(calls.load(), 1u);
    EXPECT_EQ(last.completed, jobs)
        << "final progress callback must observe the last completion";
    EXPECT_EQ(last.total, jobs);
  }
}

TEST(CampaignProgress, HeartbeatsFireWhileJobsRun) {
  std::vector<int> configs(8, 0);
  std::atomic<std::size_t> calls{0};
  harness::ProgressOptions progress;
  progress.interval_ms = 1;
  progress.on_progress = [&](const harness::CampaignProgress&) {
    calls.fetch_add(1);
  };
  harness::run_campaign(
      configs,
      [](int) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        return 0;
      },
      2, progress);
  // 8 jobs x 5 ms on 2 workers ~ 20 ms of runtime: several 1 ms beats plus
  // the final one must have fired.
  EXPECT_GE(calls.load(), 3u);
}

TEST(CampaignProgress, ThrowingJobIsRethrownAfterJoin) {
  std::vector<int> configs;
  for (int i = 0; i < 64; ++i) configs.push_back(i);
  EXPECT_THROW(
      {
        harness::run_campaign(
            configs,
            [](int value) -> int {
              if (value == 13) throw std::runtime_error("boom");
              return value;
            },
            4);
      },
      std::runtime_error);
}

TEST(CampaignProgress, ThrowingJobUnderHeartbeatJoinsTheMonitor) {
  // The throwing path unwinds through the RAII guard: workers joined, then
  // the monitor — the campaign must neither terminate nor leak the thread.
  for (int round = 0; round < 40; ++round) {
    std::vector<int> configs(16, 0);
    configs[static_cast<std::size_t>(round) % configs.size()] = 1;
    std::atomic<std::size_t> calls{0};
    harness::ProgressOptions progress;
    progress.interval_ms = 1;
    progress.on_progress = [&](const harness::CampaignProgress&) {
      calls.fetch_add(1);
    };
    bool threw = false;
    try {
      harness::run_campaign(
          configs,
          [](int poison) -> int {
            if (poison != 0) throw std::runtime_error("early verdict");
            return 0;
          },
          4, progress);
    } catch (const std::runtime_error& error) {
      threw = true;
      EXPECT_EQ(std::string(error.what()), "early verdict");
    }
    EXPECT_TRUE(threw);
    EXPECT_GE(calls.load(), 1u) << "the final monitor callback still fires";
  }
}

TEST(CampaignProgress, FirstOfManyConcurrentExceptionsWins) {
  // Every job throws from every worker at once: exactly one exception may
  // escape (on the calling thread), the rest are swallowed by the abort
  // flag — nothing reaches a pool thread's boundary.
  std::vector<int> configs(32, 0);
  int caught = 0;
  try {
    harness::run_campaign(
        configs, [](int) -> int { throw std::runtime_error("everywhere"); },
        8);
  } catch (const std::runtime_error&) {
    caught = 1;
  }
  EXPECT_EQ(caught, 1);
}

TEST(CampaignProgress, AbandonedJobsKeepDefaultResults) {
  // After an abort, unexecuted slots hold default-constructed results and
  // the vector is never resized concurrently — pinned here by throwing at
  // the first job on a single worker (deterministic abandonment).
  std::vector<int> configs = {7, 8, 9};
  try {
    harness::run_campaign(
        configs, [](int) -> int { throw std::runtime_error("first"); }, 1);
    FAIL() << "expected the exception to propagate";
  } catch (const std::runtime_error&) {
  }
}

}  // namespace
}  // namespace wfd
