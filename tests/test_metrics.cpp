// Unit tests for the metrics/statistics helpers and trace primitives used
// by every experiment binary.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/metrics.hpp"
#include "sim/trace.hpp"

namespace wfd::sim {
namespace {

TEST(Summary, EmptyIsZero) {
  Summary summary;
  EXPECT_EQ(summary.count(), 0u);
  EXPECT_EQ(summary.mean(), 0.0);
  EXPECT_EQ(summary.min(), 0.0);
  EXPECT_EQ(summary.max(), 0.0);
  EXPECT_EQ(summary.median(), 0.0);
}

TEST(Summary, SingleSample) {
  Summary summary;
  summary.add(42.0);
  EXPECT_EQ(summary.count(), 1u);
  EXPECT_EQ(summary.mean(), 42.0);
  EXPECT_EQ(summary.min(), 42.0);
  EXPECT_EQ(summary.max(), 42.0);
  EXPECT_EQ(summary.percentile(0.0), 42.0);
  EXPECT_EQ(summary.percentile(1.0), 42.0);
}

TEST(Summary, OrderInsensitive) {
  Summary a, b;
  for (double x : {5.0, 1.0, 3.0, 2.0, 4.0}) a.add(x);
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) b.add(x);
  EXPECT_EQ(a.median(), b.median());
  EXPECT_EQ(a.min(), 1.0);
  EXPECT_EQ(a.max(), 5.0);
  EXPECT_EQ(a.mean(), 3.0);
}

TEST(Summary, PercentilesMonotone) {
  Summary summary;
  for (int i = 0; i < 100; ++i) summary.add(static_cast<double>(i));
  double prev = -1.0;
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    const double value = summary.percentile(q);
    EXPECT_GE(value, prev) << "q=" << q;
    prev = value;
  }
  EXPECT_EQ(summary.percentile(0.0), 0.0);
  EXPECT_EQ(summary.percentile(1.0), 99.0);
}

TEST(Summary, NearestRankAtSmallSampleCounts) {
  // Nearest-rank: percentile(q) is the ceil(q*n)-th smallest sample. With
  // two samples the median is the FIRST (ceil(0.5*2) = 1) — the old
  // midpoint-rounding picked the second.
  Summary two;
  two.add(1.0);
  two.add(2.0);
  EXPECT_EQ(two.median(), 1.0);
  EXPECT_EQ(two.percentile(0.25), 1.0);
  EXPECT_EQ(two.percentile(0.75), 2.0);
  EXPECT_EQ(two.percentile(1.0), 2.0);

  Summary four;
  for (double x : {10.0, 20.0, 30.0, 40.0}) four.add(x);
  EXPECT_EQ(four.percentile(0.25), 10.0);  // ceil(1.0) = rank 1
  EXPECT_EQ(four.median(), 20.0);          // ceil(2.0) = rank 2
  EXPECT_EQ(four.percentile(0.51), 30.0);  // ceil(2.04) = rank 3
  EXPECT_EQ(four.percentile(0.75), 30.0);  // ceil(3.0) = rank 3
  EXPECT_EQ(four.percentile(0.76), 40.0);  // ceil(3.04) = rank 4
}

TEST(Summary, PercentileClampsOutOfRangeQuantiles) {
  Summary summary;
  summary.add(5.0);
  summary.add(7.0);
  EXPECT_EQ(summary.percentile(-0.5), 5.0);
  EXPECT_EQ(summary.percentile(1.5), 7.0);
}

TEST(Summary, MinMaxAfterIncrementalAdds) {
  Summary summary;
  summary.add(3.0);
  EXPECT_EQ(summary.min(), 3.0);
  summary.add(-1.0);  // re-sorts lazily after the earlier query
  summary.add(9.0);
  EXPECT_EQ(summary.min(), -1.0);
  EXPECT_EQ(summary.max(), 9.0);
}

TEST(Summary, AddAfterQueryStillCorrect) {
  Summary summary;
  summary.add(10.0);
  EXPECT_EQ(summary.median(), 10.0);
  summary.add(20.0);
  summary.add(0.0);
  EXPECT_EQ(summary.median(), 10.0);
  EXPECT_EQ(summary.max(), 20.0);
}

TEST(Trace, CapacityBoundsRetention) {
  Trace trace(/*max_events=*/3);
  for (int i = 0; i < 10; ++i) {
    trace.emit(Event{static_cast<Time>(i), EventKind::kStep, 0, 0, 0, 0});
  }
  EXPECT_EQ(trace.events().size(), 3u);
  EXPECT_EQ(trace.events()[0].time, 0u);  // keeps the prefix
}

TEST(Trace, ObserversSeeEverythingRegardlessOfCapacity) {
  Trace trace(/*max_events=*/0);
  int seen = 0;
  trace.subscribe([&](const Event&) { ++seen; });
  for (int i = 0; i < 7; ++i) {
    trace.emit(Event{0, EventKind::kSend, 0, 0, 0, 0});
  }
  EXPECT_EQ(seen, 7);
  EXPECT_TRUE(trace.events().empty());
}

TEST(Trace, EventToStringContainsFields) {
  const Event event{123, EventKind::kDeliver, 4, 5, 6, 7};
  const std::string text = to_string(event);
  EXPECT_NE(text.find("t=123"), std::string::npos);
  EXPECT_NE(text.find("p4"), std::string::npos);
  EXPECT_NE(text.find("deliver"), std::string::npos);
  EXPECT_NE(text.find("a=5"), std::string::npos);
}

TEST(Trace, AllKindsHaveNames) {
  for (int k = 0; k <= static_cast<int>(EventKind::kCustom); ++k) {
    EXPECT_STRNE(to_string(static_cast<EventKind>(k)), "?");
  }
}

// Regression: constructing a Trace with a capacity used to enable EVERY
// kind, dragging all events off the zero-cost path just to retain a few.
// Retention is now scoped by its own kind mask.
TEST(Trace, RetentionScopedByKindMask) {
  Trace trace(/*max_events=*/8, kind_mask(EventKind::kDinerTransition));
  EXPECT_FALSE(trace.wants(EventKind::kStep));
  EXPECT_TRUE(trace.wants(EventKind::kDinerTransition));
  trace.emit(Event{1, EventKind::kStep, 0, 0, 0, 0});
  trace.emit(Event{2, EventKind::kDinerTransition, 0, 0, 0, 1});
  trace.emit(Event{3, EventKind::kSend, 0, 1, 0, 0});
  ASSERT_EQ(trace.events().size(), 1u);
  EXPECT_EQ(trace.events()[0].kind, EventKind::kDinerTransition);
}

// Retention scoping composes with subscriptions: a subscription enables its
// kinds for dispatch, but the retention buffer still only keeps its own.
TEST(Trace, SubscriptionDoesNotWidenRetention) {
  Trace trace(/*max_events=*/8, kind_mask(EventKind::kCrash));
  int steps_seen = 0;
  trace.subscribe_kinds(kind_mask(EventKind::kStep),
                        [&](const Event&) { ++steps_seen; });
  trace.emit(Event{1, EventKind::kStep, 0, 0, 0, 0});
  trace.emit(Event{2, EventKind::kCrash, 1, 0, 0, 0});
  EXPECT_EQ(steps_seen, 1);
  ASSERT_EQ(trace.events().size(), 1u);
  EXPECT_EQ(trace.events()[0].kind, EventKind::kCrash);
}

// Regression: raw record kinds >= 64 alias low mask bits on the cheap
// `wants` pre-check; dispatch used to deliver them to typed observers that
// never subscribed to them (kind 64 aliases kStep's bit). The exact-kind
// re-check must keep them out of typed subscriptions (and out of aliased
// retention) while full-mask observers still see everything.
TEST(Trace, AliasedRawKindsNeverReachTypedObservers) {
  Trace trace(/*max_events=*/4, kind_mask(EventKind::kStep));
  int step_calls = 0;
  int all_calls = 0;
  trace.subscribe_kinds(kind_mask(EventKind::kStep),
                        [&](const Event&) { ++step_calls; });
  trace.subscribe([&](const Event&) { ++all_calls; });
  const Event aliased{1, static_cast<EventKind>(64), 0, 0, 0, 0};
  trace.emit(aliased);
  EXPECT_EQ(step_calls, 0) << "raw kind 64 rode kStep's aliased mask bit";
  EXPECT_EQ(all_calls, 1);
  EXPECT_TRUE(trace.events().empty())
      << "raw kind 64 must not be retained under kStep's retention bit";
  trace.emit(Event{2, EventKind::kStep, 0, 0, 0, 0});
  EXPECT_EQ(step_calls, 1);
  EXPECT_EQ(all_calls, 2);
  EXPECT_EQ(trace.events().size(), 1u);
}

TEST(Trace, TruncationIsCounted) {
  Trace trace(/*max_events=*/2);
  for (int i = 0; i < 5; ++i) {
    trace.emit(Event{static_cast<Time>(i), EventKind::kStep, 0, 0, 0, 0});
  }
  EXPECT_EQ(trace.events().size(), 2u);
  EXPECT_EQ(trace.truncated(), 3u);
}

TEST(Table, PrintsAlignedHeader) {
  Table table({"alpha", "beta"}, 8);
  ::testing::internal::CaptureStdout();
  table.print_header();
  table.print_row(1, "x");
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_NE(out.find('1'), std::string::npos);
}

}  // namespace
}  // namespace wfd::sim
