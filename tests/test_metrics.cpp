// Unit tests for the metrics/statistics helpers and trace primitives used
// by every experiment binary.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/metrics.hpp"
#include "sim/trace.hpp"

namespace wfd::sim {
namespace {

TEST(Summary, EmptyIsZero) {
  Summary summary;
  EXPECT_EQ(summary.count(), 0u);
  EXPECT_EQ(summary.mean(), 0.0);
  EXPECT_EQ(summary.min(), 0.0);
  EXPECT_EQ(summary.max(), 0.0);
  EXPECT_EQ(summary.median(), 0.0);
}

TEST(Summary, SingleSample) {
  Summary summary;
  summary.add(42.0);
  EXPECT_EQ(summary.count(), 1u);
  EXPECT_EQ(summary.mean(), 42.0);
  EXPECT_EQ(summary.min(), 42.0);
  EXPECT_EQ(summary.max(), 42.0);
  EXPECT_EQ(summary.percentile(0.0), 42.0);
  EXPECT_EQ(summary.percentile(1.0), 42.0);
}

TEST(Summary, OrderInsensitive) {
  Summary a, b;
  for (double x : {5.0, 1.0, 3.0, 2.0, 4.0}) a.add(x);
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) b.add(x);
  EXPECT_EQ(a.median(), b.median());
  EXPECT_EQ(a.min(), 1.0);
  EXPECT_EQ(a.max(), 5.0);
  EXPECT_EQ(a.mean(), 3.0);
}

TEST(Summary, PercentilesMonotone) {
  Summary summary;
  for (int i = 0; i < 100; ++i) summary.add(static_cast<double>(i));
  double prev = -1.0;
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    const double value = summary.percentile(q);
    EXPECT_GE(value, prev) << "q=" << q;
    prev = value;
  }
  EXPECT_EQ(summary.percentile(0.0), 0.0);
  EXPECT_EQ(summary.percentile(1.0), 99.0);
}

TEST(Summary, NearestRankAtSmallSampleCounts) {
  // Nearest-rank: percentile(q) is the ceil(q*n)-th smallest sample. With
  // two samples the median is the FIRST (ceil(0.5*2) = 1) — the old
  // midpoint-rounding picked the second.
  Summary two;
  two.add(1.0);
  two.add(2.0);
  EXPECT_EQ(two.median(), 1.0);
  EXPECT_EQ(two.percentile(0.25), 1.0);
  EXPECT_EQ(two.percentile(0.75), 2.0);
  EXPECT_EQ(two.percentile(1.0), 2.0);

  Summary four;
  for (double x : {10.0, 20.0, 30.0, 40.0}) four.add(x);
  EXPECT_EQ(four.percentile(0.25), 10.0);  // ceil(1.0) = rank 1
  EXPECT_EQ(four.median(), 20.0);          // ceil(2.0) = rank 2
  EXPECT_EQ(four.percentile(0.51), 30.0);  // ceil(2.04) = rank 3
  EXPECT_EQ(four.percentile(0.75), 30.0);  // ceil(3.0) = rank 3
  EXPECT_EQ(four.percentile(0.76), 40.0);  // ceil(3.04) = rank 4
}

TEST(Summary, PercentileClampsOutOfRangeQuantiles) {
  Summary summary;
  summary.add(5.0);
  summary.add(7.0);
  EXPECT_EQ(summary.percentile(-0.5), 5.0);
  EXPECT_EQ(summary.percentile(1.5), 7.0);
}

TEST(Summary, MinMaxAfterIncrementalAdds) {
  Summary summary;
  summary.add(3.0);
  EXPECT_EQ(summary.min(), 3.0);
  summary.add(-1.0);  // re-sorts lazily after the earlier query
  summary.add(9.0);
  EXPECT_EQ(summary.min(), -1.0);
  EXPECT_EQ(summary.max(), 9.0);
}

TEST(Summary, AddAfterQueryStillCorrect) {
  Summary summary;
  summary.add(10.0);
  EXPECT_EQ(summary.median(), 10.0);
  summary.add(20.0);
  summary.add(0.0);
  EXPECT_EQ(summary.median(), 10.0);
  EXPECT_EQ(summary.max(), 20.0);
}

TEST(Trace, CapacityBoundsRetention) {
  Trace trace(/*max_events=*/3);
  for (int i = 0; i < 10; ++i) {
    trace.emit(Event{static_cast<Time>(i), EventKind::kStep, 0, 0, 0, 0});
  }
  EXPECT_EQ(trace.events().size(), 3u);
  EXPECT_EQ(trace.events()[0].time, 0u);  // keeps the prefix
}

TEST(Trace, ObserversSeeEverythingRegardlessOfCapacity) {
  Trace trace(/*max_events=*/0);
  int seen = 0;
  trace.subscribe([&](const Event&) { ++seen; });
  for (int i = 0; i < 7; ++i) {
    trace.emit(Event{0, EventKind::kSend, 0, 0, 0, 0});
  }
  EXPECT_EQ(seen, 7);
  EXPECT_TRUE(trace.events().empty());
}

TEST(Trace, EventToStringContainsFields) {
  const Event event{123, EventKind::kDeliver, 4, 5, 6, 7};
  const std::string text = to_string(event);
  EXPECT_NE(text.find("t=123"), std::string::npos);
  EXPECT_NE(text.find("p4"), std::string::npos);
  EXPECT_NE(text.find("deliver"), std::string::npos);
  EXPECT_NE(text.find("a=5"), std::string::npos);
}

TEST(Trace, AllKindsHaveNames) {
  for (int k = 0; k <= static_cast<int>(EventKind::kCustom); ++k) {
    EXPECT_STRNE(to_string(static_cast<EventKind>(k)), "?");
  }
}

TEST(Table, PrintsAlignedHeader) {
  Table table({"alpha", "beta"}, 8);
  ::testing::internal::CaptureStdout();
  table.print_header();
  table.print_row(1, "x");
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_NE(out.find('1'), std::string::npos);
}

}  // namespace
}  // namespace wfd::sim
