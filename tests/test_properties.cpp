// Parameterized property suites: the paper's correctness properties swept
// across topologies, system sizes, seeds, crash patterns and adversarial
// box configurations. Each TEST_P asserts an invariant or an eventual
// property of a whole run, not a specific trace.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "detect/heartbeat_detector.hpp"
#include "detect/properties.hpp"
#include "graph/conflict_graph.hpp"
#include "harness/rig.hpp"
#include "mutex/ra_mutex.hpp"
#include "reduce/extraction.hpp"

namespace wfd {
namespace {

using harness::Rig;
using harness::RigOptions;

// --- dining sweep -----------------------------------------------------------

enum class Topology { kRing, kClique, kStar, kPath };

graph::ConflictGraph make_topology(Topology topology, std::uint32_t n) {
  switch (topology) {
    case Topology::kRing: return graph::make_ring(n);
    case Topology::kClique: return graph::make_clique(n);
    case Topology::kStar: return graph::make_star(n);
    case Topology::kPath: return graph::make_path(n);
  }
  return graph::make_ring(n);
}

std::string topology_name(Topology topology) {
  switch (topology) {
    case Topology::kRing: return "Ring";
    case Topology::kClique: return "Clique";
    case Topology::kStar: return "Star";
    case Topology::kPath: return "Path";
  }
  return "?";
}

using DiningParam = std::tuple<Topology, std::uint32_t /*n*/,
                               std::uint64_t /*seed*/, std::uint32_t /*crashes*/>;

class DiningSweep : public ::testing::TestWithParam<DiningParam> {};

TEST_P(DiningSweep, WaitFreeEventuallyExclusiveAndForksUnique) {
  const auto [topology, n, seed, crashes] = GetParam();
  RigOptions options{.seed = seed, .n = n, .detector_lag = 25};
  // A mistake window to exercise the <>WX convergence path on every run.
  options.mistakes = {{0, 1, 300, 1500}};
  Rig rig(options);
  auto graph = make_topology(topology, n);
  auto instance = rig.add_wait_free_dining(10, 1, graph);
  auto clients = rig.add_clients(
      instance, dining::ClientConfig{.think_min = 1, .think_max = 6});
  for (std::uint32_t c = 0; c < crashes; ++c) {
    rig.engine.schedule_crash(n - 1 - c, 2000 + 1500 * c);
  }
  dining::DiningMonitor monitor(rig.engine, instance.config);
  dining::DiningMonitor::attach(rig.engine, monitor);
  rig.engine.init();

  // Invariant sampling: a fork is held by at most one endpoint, always.
  for (int slice = 0; slice < 40; ++slice) {
    rig.engine.run(2500);
    for (const auto& [u, v] : graph.edges()) {
      ASSERT_FALSE(instance.diners[u]->holds_fork(v) &&
                   instance.diners[v]->holds_fork(u))
          << "fork duplicated on edge (" << u << "," << v << ") at t="
          << rig.engine.now();
    }
  }

  // Eventual weak exclusion: violations confined to a finite prefix.
  EXPECT_EQ(monitor.violations_since(rig.engine.now() - 60000), 0u)
      << "violations in the final suffix";
  // Wait-freedom for correct diners.
  std::string detail;
  EXPECT_TRUE(monitor.wait_free(rig.engine.now(), 30000, &detail)) << detail;
  // Progress everywhere.
  for (std::uint32_t d = 0; d < n; ++d) {
    if (rig.engine.is_correct(d)) {
      EXPECT_GT(monitor.meals(d), 10u) << "diner " << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DiningSweep,
    ::testing::Combine(::testing::Values(Topology::kRing, Topology::kClique,
                                         Topology::kStar, Topology::kPath),
                       ::testing::Values(3u, 5u),
                       ::testing::Values(101ull, 202ull),
                       ::testing::Values(0u, 1u)),
    [](const ::testing::TestParamInfo<DiningParam>& info) {
      return topology_name(std::get<0>(info.param)) + "N" +
             std::to_string(std::get<1>(info.param)) + "Seed" +
             std::to_string(std::get<2>(info.param)) + "Crash" +
             std::to_string(std::get<3>(info.param));
    });

// --- reduction sweep ---------------------------------------------------------

enum class BoxKind { kReal, kScriptedLockout, kScriptedForkBased, kUnfair };

std::string box_name(BoxKind kind) {
  switch (kind) {
    case BoxKind::kReal: return "Real";
    case BoxKind::kScriptedLockout: return "Lockout";
    case BoxKind::kScriptedForkBased: return "ForkBased";
    case BoxKind::kUnfair: return "Unfair";
  }
  return "?";
}

using ReductionParam = std::tuple<BoxKind, std::uint64_t /*seed*/,
                                  bool /*crash*/>;

class ReductionSweep : public ::testing::TestWithParam<ReductionParam> {};

TEST_P(ReductionSweep, ExtractedDetectorIsEventuallyPerfect) {
  const auto [kind, seed, crash] = GetParam();
  Rig rig(RigOptions{.seed = seed, .n = 2, .detector_lag = 25});
  std::unique_ptr<reduce::BoxFactory> factory;
  switch (kind) {
    case BoxKind::kReal:
      factory = std::make_unique<reduce::WaitFreeBoxFactory>(
          [&rig](sim::ProcessId p) { return rig.detectors[p].get(); });
      break;
    case BoxKind::kScriptedLockout:
      factory = std::make_unique<reduce::ScriptedBoxFactory>(
          rig.engine, 2000, dining::BoxSemantics::kLockout);
      break;
    case BoxKind::kScriptedForkBased:
      factory = std::make_unique<reduce::ScriptedBoxFactory>(
          rig.engine, 2000, dining::BoxSemantics::kForkBased);
      break;
    case BoxKind::kUnfair:
      factory = std::make_unique<reduce::ScriptedBoxFactory>(
          rig.engine, 500, dining::BoxSemantics::kLockout, 4);
      break;
  }
  auto extraction = reduce::build_full_extraction(rig.hosts, *factory, {});
  detect::DetectorHistory history(0xED);
  rig.engine.trace().subscribe(
      [&history](const sim::Event& e) { history.on_event(e); });
  for (const auto& pair : extraction.pairs) {
    history.set_initial(pair.watcher, pair.subject, true);
  }
  if (crash) rig.engine.schedule_crash(1, 5000);
  rig.engine.init();
  rig.engine.run(200000);
  const auto completeness = history.strong_completeness(rig.engine);
  const auto accuracy = history.eventual_strong_accuracy(rig.engine);
  EXPECT_TRUE(completeness.holds) << completeness.detail;
  EXPECT_TRUE(accuracy.holds) << accuracy.detail;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReductionSweep,
    ::testing::Combine(::testing::Values(BoxKind::kReal,
                                         BoxKind::kScriptedLockout,
                                         BoxKind::kScriptedForkBased,
                                         BoxKind::kUnfair),
                       ::testing::Values(301ull, 302ull, 303ull),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<ReductionParam>& info) {
      return box_name(std::get<0>(info.param)) + "Seed" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "Crash" : "NoCrash");
    });

// --- heartbeat detector sweep ------------------------------------------------

using HeartbeatParam = std::tuple<sim::Time /*gst*/, sim::Time /*delta*/,
                                  std::uint64_t /*seed*/>;

class HeartbeatSweep : public ::testing::TestWithParam<HeartbeatParam> {};

TEST_P(HeartbeatSweep, EventuallyPerfectUnderPartialSynchrony) {
  const auto [gst, delta, seed] = GetParam();
  sim::Engine engine(sim::EngineConfig{.seed = seed});
  constexpr std::uint32_t n = 3;
  std::vector<std::shared_ptr<detect::HeartbeatDetector>> detectors;
  for (sim::ProcessId p = 0; p < n; ++p) {
    auto detector = std::make_shared<detect::HeartbeatDetector>(
        p, n, detect::HeartbeatConfig{.port = 100});
    detectors.push_back(detector);
    auto host = std::make_unique<sim::ComponentHost>();
    host->add_component(detector, {100});
    engine.add_process(std::move(host));
  }
  engine.set_delay_model(
      std::make_unique<sim::PartialSynchronyDelay>(gst, delta, gst));
  engine.set_scheduler(std::make_unique<sim::RoundRobinScheduler>());
  engine.schedule_crash(2, gst + 2000);
  engine.init();
  engine.run(20 * gst + 80000);
  // Completeness + accuracy in the suffix.
  EXPECT_TRUE(detectors[0]->suspects(2));
  EXPECT_TRUE(detectors[1]->suspects(2));
  EXPECT_FALSE(detectors[0]->suspects(1));
  EXPECT_FALSE(detectors[1]->suspects(0));
  // Converged: no more flips.
  const auto flips = detectors[0]->transition_count();
  engine.run(20000);
  EXPECT_EQ(detectors[0]->transition_count(), flips);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HeartbeatSweep,
    ::testing::Combine(::testing::Values(100u, 1000u, 5000u),
                       ::testing::Values(2u, 8u),
                       ::testing::Values(11ull, 12ull)),
    [](const ::testing::TestParamInfo<HeartbeatParam>& info) {
      return "Gst" + std::to_string(std::get<0>(info.param)) + "Delta" +
             std::to_string(std::get<1>(info.param)) + "Seed" +
             std::to_string(std::get<2>(info.param));
    });

// --- FTME sweep ---------------------------------------------------------------

using MutexParam = std::tuple<std::uint32_t /*n*/, std::uint32_t /*crashes*/,
                              std::uint64_t /*seed*/>;

class MutexSweep : public ::testing::TestWithParam<MutexParam> {};

TEST_P(MutexSweep, PerpetualExclusionAndProgress) {
  const auto [n, crashes, seed] = GetParam();
  sim::Engine engine(sim::EngineConfig{.seed = seed});
  std::vector<sim::ComponentHost*> hosts;
  for (sim::ProcessId p = 0; p < n; ++p) {
    auto host = std::make_unique<sim::ComponentHost>();
    hosts.push_back(host.get());
    engine.add_process(std::move(host));
  }
  std::vector<const detect::TrustingDetector*> views;
  std::vector<std::shared_ptr<detect::OracleTrusting>> oracles;
  for (sim::ProcessId p = 0; p < n; ++p) {
    auto oracle =
        std::make_shared<detect::OracleTrusting>(engine, p, n, 25, 0, 0xFD);
    hosts[p]->add_component(oracle, {});
    oracles.push_back(oracle);
    views.push_back(oracle.get());
  }
  mutex::RaMutexConfig config;
  config.port = 50;
  config.tag = 7;
  for (sim::ProcessId p = 0; p < n; ++p) config.members.push_back(p);
  auto diners = mutex::build_ra_mutex(hosts, config, views);
  std::vector<std::shared_ptr<dining::DinerClient>> clients;
  for (std::uint32_t i = 0; i < n; ++i) {
    auto client = std::make_shared<dining::DinerClient>(
        *diners[i], dining::ClientConfig{.think_min = 1, .think_max = 4});
    hosts[i]->add_component(client, {});
    clients.push_back(client);
  }
  dining::DiningMonitor monitor(
      engine, dining::DiningInstanceConfig{50, 7, config.members,
                                           graph::make_clique(n)});
  dining::DiningMonitor::attach(engine, monitor);
  for (std::uint32_t c = 0; c < crashes; ++c) {
    engine.schedule_crash(c, 1500 + 1500 * c);
  }
  engine.init();
  engine.run(40000ull * n);
  EXPECT_EQ(monitor.exclusion_violations(), 0u) << "perpetual WX violated";
  std::string detail;
  EXPECT_TRUE(monitor.wait_free(engine.now(), 30000, &detail)) << detail;
  for (std::uint32_t i = crashes; i < n; ++i) {
    EXPECT_GT(diners[i]->meals(), 10u) << "member " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MutexSweep,
    ::testing::Combine(::testing::Values(2u, 3u, 5u),
                       ::testing::Values(0u, 1u),
                       ::testing::Values(401ull, 402ull)),
    [](const ::testing::TestParamInfo<MutexParam>& info) {
      return "N" + std::to_string(std::get<0>(info.param)) + "Crash" +
             std::to_string(std::get<1>(info.param)) + "Seed" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace wfd
