// Checked CLI numeric parsing (util/parse.hpp): the strict full-consumption
// contract that replaced the bare strtoull/atoi flag parsing in wfd_fuzz and
// wfd_serve — garbage, empty, overflow and trailing-junk inputs must all be
// rejected outright, and the flag_* wrappers must exit 2 naming the flag.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "util/parse.hpp"

namespace wfd::util {
namespace {

TEST(ParseU64, AcceptsPlainDecimal) {
  std::uint64_t value = 0;
  EXPECT_TRUE(parse_u64("0", &value));
  EXPECT_EQ(value, 0u);
  EXPECT_TRUE(parse_u64("42", &value));
  EXPECT_EQ(value, 42u);
  EXPECT_TRUE(parse_u64("18446744073709551615", &value));  // UINT64_MAX
  EXPECT_EQ(value, std::numeric_limits<std::uint64_t>::max());
}

TEST(ParseU64, RejectsGarbageEmptyAndTrailingJunk) {
  std::uint64_t value = 77;
  EXPECT_FALSE(parse_u64("", &value));
  EXPECT_FALSE(parse_u64("abc", &value));
  EXPECT_FALSE(parse_u64("12x", &value));   // trailing junk
  EXPECT_FALSE(parse_u64("x12", &value));
  EXPECT_FALSE(parse_u64("1 2", &value));
  EXPECT_FALSE(parse_u64(" 12", &value));   // leading whitespace
  EXPECT_FALSE(parse_u64("12 ", &value));
  EXPECT_FALSE(parse_u64("+12", &value));   // signs are junk for unsigned
  EXPECT_FALSE(parse_u64("-1", &value));
  EXPECT_FALSE(parse_u64("0x10", &value));  // no hex prefixes
  EXPECT_FALSE(parse_u64("1.5", &value));
  EXPECT_EQ(value, 77u);  // untouched on every failure
}

TEST(ParseU64, RejectsOverflowInsteadOfWrapping) {
  std::uint64_t value = 77;
  EXPECT_FALSE(parse_u64("18446744073709551616", &value));  // UINT64_MAX + 1
  EXPECT_FALSE(parse_u64("99999999999999999999999999", &value));
  EXPECT_EQ(value, 77u);
}

TEST(ParseU64Range, EnforcesBothBounds) {
  std::uint64_t value = 0;
  EXPECT_TRUE(parse_u64_range("5", 1, 10, &value));
  EXPECT_EQ(value, 5u);
  EXPECT_TRUE(parse_u64_range("1", 1, 10, &value));
  EXPECT_TRUE(parse_u64_range("10", 1, 10, &value));
  EXPECT_FALSE(parse_u64_range("0", 1, 10, &value));
  EXPECT_FALSE(parse_u64_range("11", 1, 10, &value));
  EXPECT_FALSE(parse_u64_range("junk", 1, 10, &value));
}

TEST(ParseI64, AcceptsSignedRejectsJunk) {
  std::int64_t value = 0;
  EXPECT_TRUE(parse_i64("-12", &value));
  EXPECT_EQ(value, -12);
  EXPECT_TRUE(parse_i64("12", &value));
  EXPECT_EQ(value, 12);
  EXPECT_FALSE(parse_i64("", &value));
  EXPECT_FALSE(parse_i64("-", &value));
  EXPECT_FALSE(parse_i64("--1", &value));
  EXPECT_FALSE(parse_i64("1-", &value));
  EXPECT_FALSE(parse_i64("9223372036854775808", &value));  // INT64_MAX + 1
}

using ParseDeath = ::testing::Test;

TEST(ParseDeath, FlagU64ExitsTwoNamingTheFlag) {
  EXPECT_EXIT({ (void)flag_u64("prog", "--runs", "abc", 0, 100); },
              ::testing::ExitedWithCode(2), "--runs expects an integer");
  EXPECT_EXIT({ (void)flag_u64("prog", "--runs", "", 0, 100); },
              ::testing::ExitedWithCode(2), "--runs expects an integer");
  EXPECT_EXIT({ (void)flag_u64("prog", "--runs", "101", 0, 100); },
              ::testing::ExitedWithCode(2), "expects an integer in \\[0, 100\\]");
  EXPECT_EXIT(
      { (void)flag_u64("prog", "--budget-ms", "18446744073709551616"); },
      ::testing::ExitedWithCode(2), "--budget-ms expects an integer");
}

TEST(ParseDeath, FlagIntExitsTwoOnRangeAndJunk) {
  EXPECT_EXIT({ (void)flag_int("prog", "--threads", "4096x", 0, 4096); },
              ::testing::ExitedWithCode(2), "--threads expects an integer");
  EXPECT_EXIT({ (void)flag_int("prog", "--threads", "-1", 0, 4096); },
              ::testing::ExitedWithCode(2), "--threads expects an integer");
}

TEST(ParseDeath, FlagU64ReturnsTheValueOnGoodInput) {
  EXPECT_EQ(flag_u64("prog", "--runs", "12", 0, 100), 12u);
  EXPECT_EQ(flag_int("prog", "--threads", "8", 0, 4096), 8);
}

}  // namespace
}  // namespace wfd::util
