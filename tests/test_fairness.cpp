// Eventual bounded-fairness wrapper tests (the paper's Section 8 secondary
// result, after [13]): wrapping any WF-<>WX service with the
// timestamp-deference layer preserves exclusion and wait-freedom and
// bounds overtaking in the converged suffix.
#include <gtest/gtest.h>

#include <memory>

#include "dining/fair_wrapper.hpp"
#include "dining/scripted_box.hpp"
#include "graph/conflict_graph.hpp"
#include "harness/rig.hpp"

namespace wfd::dining {
namespace {

using harness::Rig;
using harness::RigOptions;

constexpr sim::Port kInnerPort = 10;
constexpr sim::Port kWrapPort = 20;
constexpr std::uint64_t kInnerTag = 1;
constexpr std::uint64_t kWrapTag = 2;

struct Wrapped {
  BuiltInstance inner;
  std::vector<std::shared_ptr<FairDiner>> fair;
  DiningInstanceConfig wrap_config;
};

Wrapped wrap(Rig& rig, graph::ConflictGraph graph) {
  Wrapped w;
  w.inner = rig.add_wait_free_dining(kInnerPort, kInnerTag, graph);
  w.wrap_config = w.inner.config;
  w.wrap_config.port = kWrapPort;
  w.wrap_config.tag = kWrapTag;
  for (std::uint32_t i = 0; i < rig.hosts.size(); ++i) {
    auto fair = std::make_shared<FairDiner>(w.wrap_config, i,
                                            *w.inner.diners[i],
                                            rig.detectors[i].get());
    rig.hosts[i]->add_component(fair, {kWrapPort});
    w.fair.push_back(std::move(fair));
  }
  return w;
}

/// Greedy client 0 vs. slow client 1 on a shared edge; returns the
/// max-overtake chain observed in the suffix starting at `suffix_from`.
template <class Service>
std::uint64_t greedy_overtakes(sim::Engine& engine,
                               std::vector<sim::ComponentHost*>& hosts,
                               Service& fast, Service& slow,
                               DiningMonitor& monitor, sim::Time suffix_from,
                               std::uint64_t steps) {
  auto client0 = std::make_shared<DinerClient>(
      fast, ClientConfig{.think_min = 1, .think_max = 1, .eat_min = 1,
                         .eat_max = 2});
  hosts[0]->add_component(client0, {});
  auto client1 = std::make_shared<DinerClient>(
      slow, ClientConfig{.think_min = 20, .think_max = 30, .eat_min = 1,
                         .eat_max = 2});
  hosts[1]->add_component(client1, {});
  engine.init();
  engine.run(steps);
  return monitor.max_overtakes(suffix_from);
}

TEST(FairWrapper, HygienicDiningIsAlreadyNearlyFair) {
  // Measurement, not a wrapper test: Chandy-Misra fork alternation bounds
  // overtaking at ~1 by itself, so the interesting raw adversary for the
  // wrapper is an *unfair* WF-<>WX box (next test), exactly the gap the
  // paper notes: WF-<>WX promises no fairness.
  Rig raw(RigOptions{.seed = 71, .n = 2});
  auto raw_inst = raw.add_wait_free_dining(kInnerPort, kInnerTag,
                                           graph::make_pair());
  DiningMonitor raw_monitor(raw.engine, raw_inst.config);
  DiningMonitor::attach(raw.engine, raw_monitor);
  const std::uint64_t raw_k =
      greedy_overtakes(raw.engine, raw.hosts, *raw_inst.diners[0],
                       *raw_inst.diners[1], raw_monitor, 50000, 150000);
  EXPECT_LE(raw_k, 2u);
}

TEST(FairWrapper, BoundsOvertakingOnUnfairBox) {
  // Raw: the scripted box prefers member 0 in bursts of 5 — long overtake
  // chains against the hungry neighbor.
  auto build_box = [](Rig& rig, ScriptedBoxConfig& config) {
    config.port = kInnerPort;
    config.tag = kInnerTag;
    config.members = {0, 1};
    config.exclusive_from = 0;
    config.semantics = BoxSemantics::kLockout;
    config.member0_burst = 5;
    config.grant_holdoff = 15;  // let the greedy member's re-request land
    return build_scripted_box(rig.engine, rig.hosts, config);
  };

  Rig raw(RigOptions{.seed = 71, .n = 2});
  ScriptedBoxConfig raw_config;
  auto raw_box = build_box(raw, raw_config);
  DiningInstanceConfig raw_mon_config{kInnerPort, kInnerTag, {0, 1},
                                      graph::make_pair()};
  DiningMonitor raw_monitor(raw.engine, raw_mon_config);
  DiningMonitor::attach(raw.engine, raw_monitor);
  const std::uint64_t raw_k =
      greedy_overtakes(raw.engine, raw.hosts, *raw_box.diners[0],
                       *raw_box.diners[1], raw_monitor, 50000, 150000);

  // Wrapped: the timestamp-deference layer on top of the same unfair box.
  Rig fair(RigOptions{.seed = 71, .n = 2});
  ScriptedBoxConfig fair_config;
  auto fair_box = build_box(fair, fair_config);
  DiningInstanceConfig wrap_config{kWrapPort, kWrapTag, {0, 1},
                                   graph::make_pair()};
  std::vector<std::shared_ptr<FairDiner>> fair_diners;
  for (std::uint32_t i = 0; i < 2; ++i) {
    auto diner = std::make_shared<FairDiner>(wrap_config, i,
                                             *fair_box.diners[i],
                                             fair.detectors[i].get());
    fair.hosts[i]->add_component(diner, {kWrapPort});
    fair_diners.push_back(std::move(diner));
  }
  DiningMonitor fair_monitor(fair.engine, wrap_config);
  DiningMonitor::attach(fair.engine, fair_monitor);
  const std::uint64_t fair_k =
      greedy_overtakes(fair.engine, fair.hosts, *fair_diners[0],
                       *fair_diners[1], fair_monitor, 50000, 150000);

  EXPECT_GT(raw_k, 3u) << "burst box should overtake freely when raw";
  EXPECT_LE(fair_k, 2u) << "wrapper must bound suffix overtaking";
}

TEST(FairWrapper, PreservesExclusion) {
  Rig rig(RigOptions{.seed = 72, .n = 4});
  Wrapped wrapped = wrap(rig, graph::make_ring(4));
  DiningMonitor monitor(rig.engine, wrapped.wrap_config);
  DiningMonitor::attach(rig.engine, monitor);
  std::vector<std::shared_ptr<DinerClient>> clients;
  for (std::uint32_t i = 0; i < 4; ++i) {
    auto client = std::make_shared<DinerClient>(*wrapped.fair[i],
                                                ClientConfig{});
    rig.hosts[i]->add_component(client, {});
    clients.push_back(client);
  }
  rig.engine.init();
  rig.engine.run(80000);
  EXPECT_TRUE(monitor.perpetual_exclusion());
  EXPECT_GT(monitor.total_meals(), 100u);
}

TEST(FairWrapper, WaitFreeUnderCrash) {
  Rig rig(RigOptions{.seed = 73, .n = 3, .detector_lag = 30});
  Wrapped wrapped = wrap(rig, graph::make_ring(3));
  DiningMonitor monitor(rig.engine, wrapped.wrap_config);
  DiningMonitor::attach(rig.engine, monitor);
  std::vector<std::shared_ptr<DinerClient>> clients;
  for (std::uint32_t i = 0; i < 3; ++i) {
    auto client = std::make_shared<DinerClient>(*wrapped.fair[i],
                                                ClientConfig{});
    rig.hosts[i]->add_component(client, {});
    clients.push_back(client);
  }
  // Crash 2 while its wrapper may hold a pending timestamp: the survivors
  // must not defer to the dead forever.
  rig.engine.schedule_crash(2, 2000);
  rig.engine.init();
  rig.engine.run(120000);
  std::string detail;
  EXPECT_TRUE(monitor.wait_free(rig.engine.now(), 30000, &detail)) << detail;
  EXPECT_GT(monitor.meals(0), 50u);
  EXPECT_GT(monitor.meals(1), 50u);
}

TEST(FairWrapper, StampGossipHandlesReordering) {
  // Heavy reordering: delays in [1, 60] with rapid meal turnover. The
  // per-sender sequence numbers must keep pending info consistent (no
  // deadlock on stale REQs).
  Rig rig(RigOptions{.seed = 74, .n = 2, .delay_min = 1, .delay_max = 60});
  Wrapped wrapped = wrap(rig, graph::make_pair());
  DiningMonitor monitor(rig.engine, wrapped.wrap_config);
  DiningMonitor::attach(rig.engine, monitor);
  std::vector<std::shared_ptr<DinerClient>> clients;
  for (std::uint32_t i = 0; i < 2; ++i) {
    auto client = std::make_shared<DinerClient>(
        *wrapped.fair[i],
        ClientConfig{.think_min = 1, .think_max = 2, .eat_min = 1, .eat_max = 2});
    rig.hosts[i]->add_component(client, {});
    clients.push_back(client);
  }
  rig.engine.init();
  rig.engine.run(150000);
  std::string detail;
  EXPECT_TRUE(monitor.wait_free(rig.engine.now(), 30000, &detail)) << detail;
  EXPECT_GT(monitor.meals(0), 300u);
  EXPECT_GT(monitor.meals(1), 300u);
}

}  // namespace
}  // namespace wfd::dining
