// WSN duty-cycle tests (Section 2 motivation): a cluster of redundant
// sensors scheduled by wait-free <>WX dining — coverage survives battery
// deaths, redundancy stays bounded, and the network outlives any single
// battery; the all-on baseline dies with its first battery.
#include <gtest/gtest.h>

#include <memory>

#include "detect/oracle.hpp"
#include "dining/instance.hpp"
#include "graph/conflict_graph.hpp"
#include "sim/engine.hpp"
#include "wsn/duty_cycle.hpp"

namespace wfd::wsn {
namespace {

constexpr sim::Port kDiningPort = 7;
constexpr std::uint64_t kTag = 3;

struct WsnRig {
  sim::Engine engine;
  std::vector<sim::ComponentHost*> hosts;
  std::vector<std::shared_ptr<detect::OracleEventuallyPerfect>> detectors;
  dining::BuiltInstance instance;
  std::vector<std::shared_ptr<SensorNode>> sensors;
  ClusterMonitor monitor;

  WsnRig(std::uint32_t n, std::uint64_t seed, const SensorConfig& sensor_config,
         bool edgeless = false)
      : engine(sim::EngineConfig{.seed = seed}),
        monitor(kTag, [n] {
          std::vector<sim::ProcessId> m;
          for (sim::ProcessId p = 0; p < n; ++p) m.push_back(p);
          return m;
        }()) {
    for (sim::ProcessId p = 0; p < n; ++p) {
      auto host = std::make_unique<sim::ComponentHost>();
      hosts.push_back(host.get());
      engine.add_process(std::move(host));
    }
    std::vector<const detect::FailureDetector*> fds;
    for (sim::ProcessId p = 0; p < n; ++p) {
      auto oracle = std::make_shared<detect::OracleEventuallyPerfect>(
          engine, p, n, 25, std::vector<detect::MistakeWindow>{}, 0xFD);
      detectors.push_back(oracle);
      hosts[p]->add_component(oracle, {});
      fds.push_back(oracle.get());
    }
    dining::DiningInstanceConfig config;
    config.port = kDiningPort;
    config.tag = kTag;
    for (sim::ProcessId p = 0; p < n; ++p) config.members.push_back(p);
    config.graph = edgeless ? graph::ConflictGraph(n) : graph::make_clique(n);
    instance = dining::build_dining_instance(hosts, config, fds);
    for (std::uint32_t i = 0; i < n; ++i) {
      auto sensor = std::make_shared<SensorNode>(*instance.diners[i],
                                                 sensor_config);
      sensors.push_back(sensor);
      hosts[i]->add_component(sensor, {});
    }
    engine.trace().subscribe(
        [this](const sim::Event& e) { monitor.on_event(e); });
  }
};

TEST(Wsn, ScheduledClusterSharesDuty) {
  WsnRig rig(3, 61, SensorConfig{.battery = 1000000});  // effectively infinite
  rig.engine.init();
  rig.engine.run(60000);
  rig.monitor.finalize(rig.engine.now());
  for (const auto& sensor : rig.sensors) {
    EXPECT_GT(sensor->shifts(), 10u) << "every sensor takes shifts";
  }
  EXPECT_GT(rig.monitor.coverage_fraction(), 0.7);
  EXPECT_LT(rig.monitor.redundancy_fraction(), 0.05)
      << "a converged <>WX scheduler rarely double-schedules";
}

TEST(Wsn, SchedulerOutlivesIndividualBatteries) {
  // Battery covers ~2500 on-duty ticks; three sensors sharing duty should
  // keep the cluster alive roughly three times longer than one battery.
  WsnRig scheduled(3, 62, SensorConfig{.battery = 2500});
  scheduled.engine.init();
  scheduled.engine.run(60000);
  scheduled.monitor.finalize(scheduled.engine.now());

  WsnRig all_on(3, 62,
                SensorConfig{.battery = 2500, .always_on = true},
                /*edgeless=*/true);
  all_on.engine.init();
  all_on.engine.run(60000);
  all_on.monitor.finalize(all_on.engine.now());

  EXPECT_GT(scheduled.monitor.lifetime(), 2 * all_on.monitor.lifetime())
      << "duty cycling must extend network lifetime";
}

TEST(Wsn, AllOnBaselineDiesWithItsBatteries) {
  WsnRig rig(2, 63, SensorConfig{.battery = 1500, .always_on = true},
             /*edgeless=*/true);
  rig.engine.init();
  rig.engine.run(60000);
  rig.monitor.finalize(rig.engine.now());
  // All batteries drain in parallel: lifetime ~ one battery.
  EXPECT_LT(rig.monitor.lifetime(), 4000u);
  EXPECT_FALSE(rig.engine.is_live(0));
  EXPECT_FALSE(rig.engine.is_live(1));
}

TEST(Wsn, CoverageSurvivesNodeCrash) {
  WsnRig rig(3, 64, SensorConfig{.battery = 1000000});
  rig.engine.schedule_crash(0, 5000);
  rig.engine.init();
  rig.engine.run(80000);
  rig.monitor.finalize(rig.engine.now());
  // Wait-freedom: the survivors keep the cluster covered after the crash.
  EXPECT_GT(rig.monitor.lifetime(), 79000u);
  EXPECT_GT(rig.sensors[1]->shifts() + rig.sensors[2]->shifts(), 100u);
}

TEST(Wsn, DepletionIsACrash) {
  WsnRig rig(2, 65, SensorConfig{.battery = 300, .duty_length = 50});
  rig.engine.init();
  rig.engine.run(100000);
  EXPECT_FALSE(rig.engine.is_live(0));
  EXPECT_FALSE(rig.engine.is_live(1));
  for (const auto& sensor : rig.sensors) EXPECT_EQ(sensor->battery(), 0u);
}

}  // namespace
}  // namespace wfd::wsn
