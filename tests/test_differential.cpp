// Differential testing between the two verification stacks: the explicit-
// state model checker (src/mc, which enumerates every interleaving of a
// small abstraction) and the discrete-event simulator driven through the
// fuzzer's oracles (src/sim + src/reduce, which samples concrete runs of
// the real implementation). Both encode the same paper: on matching regimes
// their verdicts must agree. Disagreement in either direction means the
// abstraction and the implementation have drifted apart — exactly the bug
// class a corrigendum paper teaches us to fear.
//
// The regimes themselves now live in tests/vectors/*.scenario.json (the
// scenario DSL), shared with wfd_fuzz --scenario and test_scenario_vectors;
// this suite loads those vectors, drives both stacks through the adapter
// layer, and keeps the pointed per-regime assertions (episode counts, crash
// counts, flip counts) that a bare verdict comparison would miss.
#include <gtest/gtest.h>

#include <string>

#include "fuzz/config.hpp"
#include "fuzz/oracles.hpp"
#include "mc/model.hpp"
#include "scenario/adapters.hpp"
#include "scenario/scenario.hpp"

namespace wfd {
namespace {

scenario::Scenario load_vector(const std::string& stem) {
  scenario::Scenario s;
  std::string error;
  const std::string path =
      std::string(WFD_VECTOR_DIR) + "/" + stem + ".scenario.json";
  EXPECT_TRUE(scenario::load_scenario_file(path, &s, &error))
      << path << ": " << error;
  return s;
}

/// Both stacks on one vector, via the adapters: the mc abstraction of the
/// scenario's regime must reach the same verdict as sampled concrete runs.
void expect_stacks_agree(const scenario::Scenario& s) {
  ASSERT_TRUE(s.supports_mc()) << s.name;
  const scenario::EngineOutcome model = scenario::run_scenario_mc(s);
  EXPECT_EQ(model.violation, s.expect_mc.violation)
      << s.name << ": " << model.detail;
  ASSERT_TRUE(s.supports_fuzz()) << s.name;
  const scenario::EngineOutcome runs = scenario::run_scenario_fuzz(s);
  EXPECT_EQ(runs.violation, s.expect_fuzz.violation)
      << s.name << ": " << runs.oracle << " — " << runs.detail;
  EXPECT_EQ(model.violation, runs.violation)
      << s.name << ": the stacks disagree — " << model.detail << " vs "
      << runs.detail;
}

TEST(Differential, ExclusiveRegimeBothStacksPass) {
  // Converged (kExclusive) regime: every lemma plus the Theorem 2 accuracy
  // step holds on all interleavings, and sampled runs show zero failures.
  const scenario::Scenario s = load_vector("v01_exclusive_clean");
  scenario::McInstance instance;
  std::string error;
  ASSERT_TRUE(scenario::to_mc_instance(s, &instance, &error)) << error;
  EXPECT_EQ(instance.options.mode, mc::BoxMode::kExclusive);
  EXPECT_TRUE(instance.options.check_accuracy);
  expect_stacks_agree(s);
}

TEST(Differential, MistakePrefixRegimeBothStacksPass) {
  // During the mistake prefix (kArbitrary) the safety lemmas hold on every
  // interleaving; accuracy is a suffix property, so the adapter drops it.
  const scenario::Scenario s = load_vector("v02_mistake_prefix");
  scenario::McInstance instance;
  std::string error;
  ASSERT_TRUE(scenario::to_mc_instance(s, &instance, &error)) << error;
  EXPECT_EQ(instance.options.mode, mc::BoxMode::kArbitrary);
  EXPECT_FALSE(instance.options.check_accuracy);
  expect_stacks_agree(s);
}

TEST(Differential, CrashRegimeBothStacksPass) {
  // With a nondeterministic subject crash, Theorem 1 (suspicion of a
  // drained crashed subject is permanent) holds on every interleaving; the
  // concrete run must actually crash exactly the planned process.
  const scenario::Scenario s = load_vector("v03_crash_regime");
  scenario::McInstance instance;
  std::string error;
  ASSERT_TRUE(scenario::to_mc_instance(s, &instance, &error)) << error;
  EXPECT_TRUE(instance.options.allow_crash);
  EXPECT_FALSE(instance.options.check_deadlock);
  expect_stacks_agree(s);

  const fuzz::RunResult run = fuzz::run_config(scenario::to_fuzz_config(s));
  EXPECT_TRUE(run.ok());
  EXPECT_EQ(run.stats.crashes, 1u);
}

TEST(Differential, SingleInstanceAblationBothStacksFail) {
  // The E9 ablation (one instance, no hand-off) has a lasso — a legal
  // wait-free exclusive run in which the witness wrongfully suspects the
  // correct subject infinitely often. The model's infinitely-often cycle
  // shows up as a recurring (not one-shot) episode count on the finite run.
  const scenario::Scenario s = load_vector("v04_broken_single_instance");
  expect_stacks_agree(s);

  const scenario::EngineOutcome model = scenario::run_scenario_mc(s);
  EXPECT_TRUE(model.violation);
  EXPECT_FALSE(model.detail.empty()) << "expected a counterexample";

  const fuzz::RunResult run = fuzz::run_config(scenario::to_fuzz_config(s));
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.primary()->oracle, "detector_accuracy");
  EXPECT_GT(run.stats.late_suspicion_episodes, 1u)
      << "expected recurring (not one-shot) wrongful suspicion, matching the "
         "model's lasso";
}

TEST(Differential, ComposedPairsMatchSimulatedFullExtraction) {
  // Two independent ordered pairs composed in one mc state — the lemma
  // lattice survives composition (the full extraction runs N(N-1) pairs);
  // the real N=3 extraction must grade clean with a live detector.
  const scenario::Scenario s = load_vector("v06_composed_pairs");
  scenario::McInstance instance;
  std::string error;
  ASSERT_TRUE(scenario::to_mc_instance(s, &instance, &error)) << error;
  EXPECT_EQ(instance.options.pairs, 2u);
  expect_stacks_agree(s);

  const fuzz::RunResult run = fuzz::run_config(scenario::to_fuzz_config(s));
  EXPECT_TRUE(run.ok());
  EXPECT_GT(run.stats.detector_flips, 0u);
}

}  // namespace
}  // namespace wfd
