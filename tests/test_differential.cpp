// Differential testing between the two verification stacks: the explicit-
// state model checker (src/mc, which enumerates every interleaving of a
// small abstraction) and the discrete-event simulator driven through the
// fuzzer's oracles (src/sim + src/reduce, which samples concrete runs of
// the real implementation). Both encode the same paper: on matching regimes
// their verdicts must agree. Disagreement in either direction means the
// abstraction and the implementation have drifted apart — exactly the bug
// class a corrigendum paper teaches us to fear.
#include <gtest/gtest.h>

#include <string>

#include "fuzz/config.hpp"
#include "fuzz/fuzzer.hpp"
#include "fuzz/oracles.hpp"
#include "mc/ablation_model.hpp"
#include "mc/reduction_model.hpp"

namespace wfd {
namespace {

/// A concrete simulator run of the two-instance extraction against the
/// scripted box, in the regime the model abstracts: finite mistake prefix
/// (kArbitrary until exclusive_from, kExclusive after).
fuzz::FuzzConfig scripted_extraction_config(std::uint64_t seed,
                                            sim::Time exclusive_from) {
  fuzz::FuzzConfig config;
  config.seed = seed;
  config.target = fuzz::TargetKind::kScriptedExtraction;
  config.n = 2;
  config.steps = 60000;
  config.scheduler = fuzz::SchedulerKind::kRandom;
  config.delay = fuzz::DelayKind::kUniform;
  config.delay_min = 1;
  config.delay_max = 4;
  config.exclusive_from = exclusive_from;
  return config;
}

TEST(Differential, ExclusiveRegimeBothStacksPass) {
  // Model: exhaustive exploration of the converged (kExclusive) regime —
  // every lemma plus the Theorem 2 accuracy step holds on all interleavings.
  mc::McOptions options;
  options.mode = mc::BoxMode::kExclusive;
  options.check_accuracy = true;
  const mc::CheckResult model = mc::check_reduction(options);
  ASSERT_TRUE(model.ok()) << model.counterexample;

  // Simulator: sampled runs of the real extraction in the same regime
  // (converged from the start) must show zero oracle failures.
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const fuzz::RunResult run =
        fuzz::run_config(scripted_extraction_config(seed, 0));
    EXPECT_TRUE(run.ok()) << "seed " << seed << ": "
                          << run.primary()->oracle << " — "
                          << run.primary()->detail;
  }
}

TEST(Differential, MistakePrefixRegimeBothStacksPass) {
  // Model: during the mistake prefix (kArbitrary) the safety lemmas hold on
  // every interleaving; accuracy is a suffix property, so it is off.
  mc::McOptions options;
  options.mode = mc::BoxMode::kArbitrary;
  options.check_accuracy = false;
  const mc::CheckResult model = mc::check_reduction(options);
  ASSERT_TRUE(model.ok()) << model.counterexample;

  // Simulator: a run whose box has a long mistake prefix must still
  // converge — no post-deadline wrongful suspicion, completeness intact.
  for (std::uint64_t seed : {4ull, 5ull}) {
    const fuzz::RunResult run =
        fuzz::run_config(scripted_extraction_config(seed, 4000));
    EXPECT_TRUE(run.ok()) << "seed " << seed << ": "
                          << run.primary()->oracle << " — "
                          << run.primary()->detail;
  }
}

TEST(Differential, CrashRegimeBothStacksPass) {
  // Model: with a nondeterministic subject crash, Theorem 1 (suspicion of a
  // drained crashed subject is permanent) holds on every interleaving.
  mc::McOptions options;
  options.mode = mc::BoxMode::kExclusive;
  options.allow_crash = true;
  const mc::CheckResult model = mc::check_reduction(options);
  ASSERT_TRUE(model.ok()) << model.counterexample;

  // Simulator: crash one process mid-run; the extracted detector must stay
  // accurate for the survivors and complete against the crashed one (the
  // detector_completeness oracle grades exactly Theorem 1's conclusion).
  fuzz::FuzzConfig config = scripted_extraction_config(6, 0);
  config.n = 3;
  config.crashes.push_back({2, 9000});
  const fuzz::RunResult run = fuzz::run_config(config);
  EXPECT_TRUE(run.ok()) << run.primary()->oracle << " — "
                        << run.primary()->detail;
  EXPECT_EQ(run.stats.crashes, 1u);
}

TEST(Differential, SingleInstanceAblationBothStacksFail) {
  // Model: the E9 ablation (one instance, no hand-off) has a lasso — a
  // legal wait-free exclusive run in which the witness wrongfully suspects
  // the correct subject infinitely often. Verdict: violation.
  const mc::CheckResult model = mc::check_ablation();
  ASSERT_EQ(model.verdict, mc::Verdict::kViolation);
  EXPECT_FALSE(model.counterexample.empty());

  // Simulator: the concrete single-instance extraction against the unfair
  // lockout box realizes that lasso — recurring post-deadline suspicion
  // episodes of a correct subject, i.e. the detector_accuracy oracle fires.
  // The model's infinitely-often cycle shows up as an unbounded episode
  // count on the finite run.
  fuzz::FuzzConfig config;
  config.seed = 1;
  config.target = fuzz::TargetKind::kBrokenSingleInstance;
  config.steps = 50000;
  const fuzz::RunResult run = fuzz::run_config(config);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.primary()->oracle, "detector_accuracy");
  EXPECT_GT(run.stats.late_suspicion_episodes, 1u)
      << "expected recurring (not one-shot) wrongful suspicion, matching the "
         "model's lasso";
}

TEST(Differential, ComposedPairsMatchSimulatedFullExtraction) {
  // Model: two independent ordered pairs composed in one state — the lemma
  // lattice survives composition (the full extraction runs N(N-1) pairs).
  mc::McOptions options;
  options.mode = mc::BoxMode::kExclusive;
  options.pairs = 2;
  const mc::CheckResult model = mc::check_reduction(options);
  ASSERT_TRUE(model.ok()) << model.counterexample;

  // Simulator: the real N=3 full extraction (6 ordered pairs over the real
  // wait-free algorithm) must grade clean on the same oracles.
  fuzz::FuzzConfig config;
  config.seed = 8;
  config.target = fuzz::TargetKind::kExtraction;
  config.n = 3;
  config.steps = 60000;
  config.delay = fuzz::DelayKind::kUniform;
  config.delay_min = 1;
  config.delay_max = 3;
  const fuzz::RunResult run = fuzz::run_config(config);
  EXPECT_TRUE(run.ok()) << run.primary()->oracle << " — "
                        << run.primary()->detail;
  EXPECT_GT(run.stats.detector_flips, 0u);
}

}  // namespace
}  // namespace wfd
