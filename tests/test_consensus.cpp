// Consensus and leader-election tests — the Section 1 applications of <>P,
// including the flagship end-to-end: consensus running on the detector the
// reduction EXTRACTS from a black-box dining service. That is what "the
// weakest failure detector" means operationally: a WF-<>WX scheduler
// encapsulates enough synchrony to solve consensus.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "consensus/consensus.hpp"
#include "detect/oracle.hpp"
#include "harness/rig.hpp"
#include "reduce/extraction.hpp"

namespace wfd::consensus {
namespace {

using harness::Rig;
using harness::RigOptions;

constexpr sim::Port kPort = 500;

struct ConsensusRig {
  Rig rig;
  std::vector<std::shared_ptr<ConsensusParticipant>> participants;

  ConsensusRig(const RigOptions& options,
               const detect::FailureDetector* const* detectors = nullptr)
      : rig(options) {
    ConsensusConfig config;
    config.port = kPort;
    for (sim::ProcessId p = 0; p < options.n; ++p) {
      config.members.push_back(p);
    }
    for (std::uint32_t m = 0; m < options.n; ++m) {
      auto participant = std::make_shared<ConsensusParticipant>(
          config, m,
          detectors != nullptr ? detectors[m] : rig.detectors[m].get());
      rig.hosts[m]->add_component(participant, {kPort});
      participants.push_back(participant);
    }
  }

  /// Everyone proposes; returns true iff all correct decided the same value
  /// which was somebody's proposal (agreement + validity + termination).
  bool run_and_check(const std::vector<std::uint64_t>& proposals,
                     std::uint64_t max_steps, std::string* why = nullptr) {
    for (std::uint32_t m = 0; m < participants.size(); ++m) {
      participants[m]->propose(proposals[m]);
    }
    rig.engine.init();
    rig.engine.run_until(
        [&] {
          for (std::uint32_t m = 0; m < participants.size(); ++m) {
            if (rig.engine.is_live(m) && !participants[m]->decided()) {
              return false;
            }
          }
          return true;
        },
        max_steps, 64);
    std::set<std::uint64_t> decisions;
    for (std::uint32_t m = 0; m < participants.size(); ++m) {
      if (!rig.engine.is_correct(m)) continue;
      if (!participants[m]->decided()) {
        if (why != nullptr) *why = "correct participant never decided";
        return false;
      }
      decisions.insert(participants[m]->decision());
    }
    if (decisions.size() != 1) {
      if (why != nullptr) *why = "disagreement";
      return false;
    }
    for (std::uint64_t value : proposals) {
      if (*decisions.begin() == value) return true;
    }
    if (why != nullptr) *why = "decided value was never proposed";
    return false;
  }
};

TEST(Consensus, DecidesWithoutFaults) {
  ConsensusRig rig(RigOptions{.seed = 81, .n = 3});
  std::string why;
  EXPECT_TRUE(rig.run_and_check({10, 20, 30}, 400000, &why)) << why;
}

TEST(Consensus, UnanimousProposalDecided) {
  ConsensusRig rig(RigOptions{.seed = 82, .n = 5});
  std::string why;
  EXPECT_TRUE(rig.run_and_check({7, 7, 7, 7, 7}, 600000, &why)) << why;
  EXPECT_EQ(rig.participants[0]->decision(), 7u);
}

TEST(Consensus, SurvivesMinorityCrashes) {
  ConsensusRig rig(RigOptions{.seed = 83, .n = 5, .detector_lag = 30});
  rig.rig.engine.schedule_crash(0, 200);  // the round-0 coordinator!
  rig.rig.engine.schedule_crash(4, 500);
  std::string why;
  EXPECT_TRUE(rig.run_and_check({1, 2, 3, 4, 5}, 800000, &why)) << why;
}

TEST(Consensus, SafeDespiteDetectorLies) {
  // Wrongful suspicions may cost rounds, never agreement.
  RigOptions options{.seed = 84, .n = 3, .detector_lag = 30};
  options.mistakes = {{1, 0, 50, 4000}, {2, 0, 100, 3500}, {0, 1, 200, 2000}};
  ConsensusRig rig(options);
  std::string why;
  EXPECT_TRUE(rig.run_and_check({100, 200, 300}, 600000, &why)) << why;
}

TEST(Consensus, LateProposerLearnsTheDecision) {
  // A majority (0, 1) may decide before 2 ever proposes; the decision must
  // still reach 2 (reliable DECIDE relay) and match.
  ConsensusRig rig(RigOptions{.seed = 85, .n = 3});
  rig.participants[0]->propose(1);
  rig.participants[1]->propose(2);
  rig.rig.engine.init();
  rig.rig.engine.run(5000);  // participant 2 silent so far
  rig.participants[2]->propose(3);
  rig.rig.engine.run_until(
      [&] {
        return rig.participants[0]->decided() &&
               rig.participants[1]->decided() && rig.participants[2]->decided();
      },
      400000, 64);
  ASSERT_TRUE(rig.participants[2]->decided());
  EXPECT_EQ(rig.participants[0]->decision(), rig.participants[2]->decision());
  // Validity: the decision came from the early proposers.
  EXPECT_TRUE(rig.participants[0]->decision() == 1 ||
              rig.participants[0]->decision() == 2);
}

// --- the flagship: consensus over the EXTRACTED detector -------------------

TEST(Consensus, RunsOnDetectorExtractedFromDining) {
  Rig rig(RigOptions{.seed = 86, .n = 3, .detector_lag = 25});
  reduce::WaitFreeBoxFactory factory(
      [&rig](sim::ProcessId p) { return rig.detectors[p].get(); });
  auto extraction = reduce::build_full_extraction(rig.hosts, factory, {});

  ConsensusConfig config;
  config.port = kPort;
  config.members = {0, 1, 2};
  std::vector<std::shared_ptr<ConsensusParticipant>> participants;
  for (std::uint32_t m = 0; m < 3; ++m) {
    auto participant = std::make_shared<ConsensusParticipant>(
        config, m, extraction.detectors[m].get());
    rig.hosts[m]->add_component(participant, {kPort});
    participants.push_back(participant);
  }
  for (std::uint32_t m = 0; m < 3; ++m) participants[m]->propose(40 + m);
  rig.engine.schedule_crash(2, 3000);
  rig.engine.init();
  const bool done = rig.engine.run_until(
      [&] {
        return participants[0]->decided() && participants[1]->decided();
      },
      1500000, 128);
  ASSERT_TRUE(done) << "consensus over the extracted detector timed out";
  EXPECT_EQ(participants[0]->decision(), participants[1]->decision());
  std::set<std::uint64_t> valid{40, 41, 42};
  EXPECT_TRUE(valid.count(participants[0]->decision()) == 1);
}

// --- leader election --------------------------------------------------------

TEST(LeaderElection, ConvergesToLowestCorrect) {
  Rig rig(RigOptions{.seed = 87, .n = 4, .detector_lag = 25});
  std::vector<LeaderElector> electors;
  for (std::uint32_t p = 0; p < 4; ++p) {
    electors.emplace_back(4, rig.detectors[p].get(), p);
  }
  rig.engine.schedule_crash(0, 1000);
  rig.engine.init();
  rig.engine.run(20000);
  for (std::uint32_t p = 1; p < 4; ++p) {
    EXPECT_EQ(electors[p].leader(), 1u) << "elector at " << p;
  }
  // Stability: still the same much later.
  rig.engine.run(20000);
  for (std::uint32_t p = 1; p < 4; ++p) {
    EXPECT_EQ(electors[p].leader(), 1u);
  }
}

TEST(LeaderElection, WorksOnExtractedDetector) {
  Rig rig(RigOptions{.seed = 88, .n = 3, .detector_lag = 25});
  reduce::WaitFreeBoxFactory factory(
      [&rig](sim::ProcessId p) { return rig.detectors[p].get(); });
  auto extraction = reduce::build_full_extraction(rig.hosts, factory, {});
  std::vector<LeaderElector> electors;
  for (std::uint32_t p = 0; p < 3; ++p) {
    electors.emplace_back(3, extraction.detectors[p].get(), p);
  }
  rig.engine.schedule_crash(0, 2000);
  rig.engine.init();
  rig.engine.run(200000);
  EXPECT_EQ(electors[1].leader(), 1u);
  EXPECT_EQ(electors[2].leader(), 1u);
}

}  // namespace
}  // namespace wfd::consensus
