// The fuzzer's own contracts: sampling and runs are pure functions of their
// seeds, normalize() establishes the documented invariants for every input,
// configs and repro cases survive a JSON round trip bit-exactly, the
// shrinker preserves the failing oracle while only ever simplifying, and a
// campaign's outcome does not depend on the worker thread count.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz/config.hpp"
#include "fuzz/fuzzer.hpp"
#include "fuzz/json.hpp"
#include "fuzz/oracles.hpp"

namespace wfd::fuzz {
namespace {

FuzzConfig broken_fork_based_config() {
  FuzzConfig config;
  config.seed = 7;
  config.target = TargetKind::kBrokenForkBased;
  config.n = 3;
  config.steps = 40000;
  config.graph = GraphKind::kClique;
  config.scheduler = SchedulerKind::kRoundRobin;
  config.delay = DelayKind::kFixed;
  config.delay_min = 2;
  config.delay_max = 2;
  return config;
}

TEST(FuzzSampling, PureFunctionOfSeedAndIndex) {
  const std::vector<TargetKind> pool = legal_targets();
  for (std::uint64_t index : {0ull, 1ull, 17ull}) {
    const FuzzConfig a = sample_config(42, index, pool);
    const FuzzConfig b = sample_config(42, index, pool);
    EXPECT_EQ(config_to_json(a), config_to_json(b));
  }
  // Different indices (and different master seeds) must diverge somewhere.
  EXPECT_NE(config_to_json(sample_config(42, 0, pool)),
            config_to_json(sample_config(42, 1, pool)));
  EXPECT_NE(config_to_json(sample_config(42, 0, pool)),
            config_to_json(sample_config(43, 0, pool)));
}

TEST(FuzzSampling, DrawsOnlyFromThePool) {
  const std::vector<TargetKind> pool = {TargetKind::kScriptedDining};
  for (std::uint64_t index = 0; index < 32; ++index) {
    EXPECT_EQ(sample_config(9, index, pool).target,
              TargetKind::kScriptedDining);
  }
}

TEST(FuzzNormalize, EstablishesDocumentedInvariants) {
  FuzzConfig wild;
  wild.target = TargetKind::kScriptedDining;
  wild.n = 40;
  wild.steps = 10;
  wild.delay_min = 90;
  wild.delay_max = 3;
  wild.scheduler = SchedulerKind::kRoundRobin;
  wild.pauses.push_back({1, 100, 50});             // inverted window
  wild.crashes.push_back({0, 10});                 // manager host: dropped
  wild.crashes.push_back({99, 10});                // no such process
  wild.crashes.push_back({1, 5000000});            // clamped into first half
  wild.mistakes.push_back({2, 2, 0, 100});         // watcher == subject
  const FuzzConfig config = normalize(wild);
  EXPECT_LE(config.n, 8u);
  EXPECT_GE(config.n, 2u);
  EXPECT_GE(config.delay_max, config.delay_min);
  EXPECT_TRUE(config.pauses.empty());  // non-pausing scheduler
  ASSERT_EQ(config.crashes.size(), 1u);
  EXPECT_EQ(config.crashes[0].pid, 1u);
  EXPECT_LE(config.crashes[0].at, config.steps / 2);
  EXPECT_TRUE(config.mistakes.empty());
  // Runway: the run must extend past the convergence deadline.
  EXPECT_GT(config.steps, convergence_deadline(config));
  // Normalize must be idempotent, or replay-after-normalize would drift.
  EXPECT_EQ(config_to_json(normalize(config)), config_to_json(config));
}

TEST(FuzzNormalize, PairGraphRequiresTwoProcesses) {
  FuzzConfig config;
  config.target = TargetKind::kDining;
  config.n = 5;
  config.graph = GraphKind::kPair;
  EXPECT_EQ(normalize(config).graph, GraphKind::kPath);
  config.n = 2;
  EXPECT_EQ(normalize(config).graph, GraphKind::kPair);
}

TEST(FuzzNormalize, BrokenTargetsForceTheirDefect) {
  FuzzConfig config;
  config.target = TargetKind::kBrokenSingleInstance;
  config.member0_burst = 0;
  config.exclusive_from = 0;
  const FuzzConfig single = normalize(config);
  EXPECT_EQ(single.n, 2u);
  EXPECT_EQ(single.semantics, dining::BoxSemantics::kLockout);
  EXPECT_GE(single.member0_burst, 2u);
  EXPECT_GE(single.exclusive_from, 1u);
  EXPECT_TRUE(single.crashes.empty());

  config = FuzzConfig{};
  config.target = TargetKind::kBrokenForkBased;
  const FuzzConfig fork = normalize(config);
  EXPECT_EQ(fork.semantics, dining::BoxSemantics::kForkBased);
  EXPECT_GT(fork.exclusive_from, 0u);
  EXPECT_GE(fork.never_exit_member, 0);
  EXPECT_LT(fork.never_exit_member, static_cast<std::int32_t>(fork.n));
}

TEST(FuzzConfigJson, RoundTripsBitExactly) {
  FuzzConfig config = sample_config(123, 5, legal_targets());
  config.crashes.push_back({1, 777});
  config.mistakes.push_back({0, 1, 10, 500});
  const std::string text = config_to_json(config);
  FuzzConfig parsed;
  std::string error;
  ASSERT_TRUE(config_from_json(text, &parsed, &error)) << error;
  EXPECT_EQ(config_to_json(parsed), text);
}

TEST(FuzzReproJson, RoundTripsExpectedOutcome) {
  ReproCase repro;
  repro.config = normalize(broken_fork_based_config());
  repro.oracle = "wx_safety";
  repro.at = 31337;
  repro.detail = "detail text with \"quotes\" and \\ backslash";
  const std::string text = repro_to_json(repro);
  ReproCase parsed;
  std::string error;
  ASSERT_TRUE(repro_from_json(text, &parsed, &error)) << error;
  EXPECT_EQ(parsed.oracle, repro.oracle);
  EXPECT_EQ(parsed.at, repro.at);
  EXPECT_EQ(parsed.detail, repro.detail);
  EXPECT_EQ(config_to_json(parsed.config), config_to_json(repro.config));
}

TEST(FuzzJson, RejectsMalformedInput) {
  Json value;
  std::string error;
  EXPECT_FALSE(Json::parse("{\"a\": }", &value, &error));
  EXPECT_FALSE(Json::parse("{\"a\": 1} trailing", &value, &error));
  EXPECT_FALSE(Json::parse("", &value, &error));
  FuzzConfig config;
  EXPECT_FALSE(config_from_json("[1, 2, 3]", &config, &error));
}

// Regression: parse_value recursed with no depth limit, so a hostile
// hand-edited .repro of 100k open brackets overflowed the stack. Deep
// nesting must come back as a parse error, never a crash.
TEST(FuzzJson, HostileNestingIsAnErrorNotACrash) {
  Json value;
  std::string error;
  EXPECT_FALSE(Json::parse(std::string(100000, '['), &value, &error));
  EXPECT_NE(error.find("nesting"), std::string::npos) << error;
  // Same through objects.
  std::string hostile;
  for (int i = 0; i < 100000; ++i) hostile += "{\"k\":";
  EXPECT_FALSE(Json::parse(hostile, &value, &error));
  EXPECT_NE(error.find("nesting"), std::string::npos) << error;
}

TEST(FuzzJson, ReasonableNestingStaysAccepted) {
  std::string text(32, '[');
  text += "1";
  text += std::string(32, ']');
  Json value;
  std::string error;
  EXPECT_TRUE(Json::parse(text, &value, &error)) << error;
}

// Regression: duplicate object keys were silently appended, so find()
// (first match) returned the FIRST value while a writer round trip kept
// both. Last wins now, in place, with an optional warning per duplicate.
TEST(FuzzJson, DuplicateKeysLastWinsWithWarning) {
  Json value;
  std::string error;
  std::vector<std::string> warnings;
  ASSERT_TRUE(Json::parse(R"({"a":1,"b":2,"a":3})", &value, &error,
                          &warnings));
  ASSERT_EQ(value.members.size(), 2u);
  EXPECT_EQ(value.find("a")->as_u64(), 3u);
  EXPECT_EQ(value.find("b")->as_u64(), 2u);
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("duplicate key \"a\""), std::string::npos);
  // Without a warnings sink the parse still succeeds with last-wins.
  Json quiet;
  ASSERT_TRUE(Json::parse(R"({"a":1,"a":2})", &quiet, &error));
  EXPECT_EQ(quiet.find("a")->as_u64(), 2u);
}

TEST(FuzzRun, DeterministicAcrossInvocations) {
  const FuzzConfig config = sample_config(5, 2, legal_targets());
  const RunResult a = run_config(config);
  const RunResult b = run_config(config);
  EXPECT_EQ(a.signature, b.signature);
  EXPECT_EQ(a.stats.steps, b.stats.steps);
  EXPECT_EQ(a.stats.messages_sent, b.stats.messages_sent);
  EXPECT_EQ(a.failures.size(), b.failures.size());
}

TEST(FuzzShrink, PreservesOracleAndOnlySimplifies) {
  const FuzzConfig failing = normalize(broken_fork_based_config());
  const RunResult before = run_config(failing);
  ASSERT_FALSE(before.ok());
  const std::string oracle = before.primary()->oracle;

  const ShrinkOutcome outcome = shrink_case(failing, 80);
  EXPECT_EQ(outcome.repro.oracle, oracle);
  const FuzzConfig& shrunk = outcome.repro.config;
  EXPECT_LE(shrunk.n, failing.n);
  EXPECT_LE(shrunk.steps, failing.steps);
  EXPECT_LE(shrunk.crashes.size(), failing.crashes.size());
  // The recorded outcome is what the shrunk config actually produces.
  std::string why;
  EXPECT_TRUE(replay_case(outcome.repro, &why)) << why;
}

TEST(FuzzReplay, DetectsOutcomeDrift) {
  ReproCase repro = shrink_case(normalize(broken_fork_based_config()), 40).repro;
  std::string why;
  ASSERT_TRUE(replay_case(repro, &why)) << why;
  repro.at += 1;  // stored outcome no longer matches the run
  EXPECT_FALSE(replay_case(repro, &why));
  EXPECT_FALSE(why.empty());
}

TEST(FuzzCampaign, ThreadCountDoesNotChangeTheOutcome) {
  CampaignOptions options;
  options.master_seed = 11;
  options.runs = 6;
  options.shrink = false;
  options.targets = legal_targets();
  options.threads = 1;
  const CampaignResult sequential = run_fuzz_campaign(options);
  options.threads = 4;
  const CampaignResult parallel = run_fuzz_campaign(options);
  EXPECT_EQ(sequential.stats.executed, parallel.stats.executed);
  EXPECT_EQ(sequential.stats.failing, parallel.stats.failing);
  EXPECT_EQ(sequential.stats.corpus_size, parallel.stats.corpus_size);
  EXPECT_EQ(sequential.stats.total_steps, parallel.stats.total_steps);
}

TEST(FuzzShrink, AlreadyMinimalCaseComesBackUnchanged) {
  // Shrink to a fixed point, then shrink the fixed point again: a 1-minimal
  // case must survive a second pass bit-identically (ddmin is idempotent).
  const ShrinkOutcome first =
      shrink_case(normalize(broken_fork_based_config()), 120);
  ASSERT_TRUE(first.reproduced);
  const ShrinkOutcome second = shrink_case(first.repro.config, 120);
  ASSERT_TRUE(second.reproduced);
  EXPECT_EQ(config_to_json(second.repro.config),
            config_to_json(first.repro.config));
  EXPECT_EQ(second.repro.oracle, first.repro.oracle);
  EXPECT_EQ(second.accepted, 0u);  // nothing simpler still fails
}

TEST(FuzzShrink, NonReproducingInputFailsLoudly) {
  // A clean config handed to the shrinker must not delta-debug noise into a
  // bogus reproducer: reproduced == false, oracle "none".
  FuzzConfig clean = sample_config(5, 2, {TargetKind::kDining});
  const RunResult check = run_config(clean);
  ASSERT_TRUE(check.ok()) << check.primary()->oracle;
  const ShrinkOutcome outcome = shrink_case(clean, 40);
  EXPECT_FALSE(outcome.reproduced);
  EXPECT_EQ(outcome.repro.oracle, "none");
  EXPECT_EQ(outcome.accepted, 0u);
}

TEST(FuzzShrink, ReproJsonKeepsSchemaVersion) {
  const ShrinkOutcome outcome =
      shrink_case(normalize(broken_fork_based_config()), 40);
  ASSERT_TRUE(outcome.reproduced);
  const std::string text = repro_to_json(outcome.repro);
  EXPECT_NE(text.find("\"schema_version\": 1"), std::string::npos);
  ReproCase reloaded;
  std::string error;
  ASSERT_TRUE(repro_from_json(text, &reloaded, &error)) << error;
  EXPECT_EQ(repro_to_json(reloaded), text);
}

TEST(FuzzReplayPath, DirectoryIsScannedRecursivelyAndFullyReported) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "wfd_fuzz_replay_path_test";
  fs::remove_all(dir);
  fs::create_directories(dir / "nested");

  const ShrinkOutcome good =
      shrink_case(normalize(broken_fork_based_config()), 40);
  ASSERT_TRUE(good.reproduced);
  ReproCase drifted = good.repro;
  drifted.at += 1;  // stored outcome no longer matches the run
  ASSERT_TRUE(save_repro_file((dir / "a_good.repro").string(), good.repro));
  ASSERT_TRUE(
      save_repro_file((dir / "nested" / "drifted.repro").string(), drifted));
  {
    std::ofstream garbage(dir / "nested" / "garbage.repro");
    garbage << "{not json";
  }

  const ReplayReport report = replay_path(dir.string());
  // All three files found (recursion), all three reported (no early stop).
  ASSERT_EQ(report.items.size(), 3u);
  EXPECT_EQ(report.passed, 1u);
  EXPECT_EQ(report.failed, 2u);
  EXPECT_FALSE(report.all_ok());
  // Sorted-path order: a_good first, then the nested pair.
  EXPECT_TRUE(report.items[0].ok);
  EXPECT_FALSE(report.items[1].ok);
  EXPECT_FALSE(report.items[1].why.empty());
  EXPECT_FALSE(report.items[2].ok);
  fs::remove_all(dir);
}

TEST(FuzzReplayPath, EmptyDirectoryIsAFailingReport) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "wfd_fuzz_replay_empty";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const ReplayReport report = replay_path(dir.string());
  EXPECT_TRUE(report.items.empty());
  EXPECT_FALSE(report.all_ok());
  fs::remove_all(dir);
}

TEST(FuzzCampaign, BrokenPoolYieldsAShrunkReproducer) {
  CampaignOptions options;
  options.master_seed = 1;
  options.runs = 2;
  options.targets = {TargetKind::kBrokenForkBased};
  options.max_shrink_attempts = 60;
  const CampaignResult campaign = run_fuzz_campaign(options);
  EXPECT_EQ(campaign.stats.failing, 2u);
  ASSERT_FALSE(campaign.repros.empty());
  EXPECT_EQ(campaign.repros[0].oracle, "wx_safety");
  std::string why;
  EXPECT_TRUE(replay_case(campaign.repros[0], &why)) << why;
}

}  // namespace
}  // namespace wfd::fuzz
