// Implementation <-> model conformance: the model checker (src/mc) proves
// the lemmas over an *abstraction*; these tests sample the same invariants
// on the LIVE implementation (real message-passing, real boxes) at every
// few steps of long seeded runs. Together they close the usual gap between
// "the model is right" and "the code is the model".
//
// Sampled invariants (paper Section 7):
//   Lemma 2:  s_i not eating  =>  ping_i = true
//   Lemma 4:  s_i hungry      =>  trigger = i
//   Lemma 9:  some witness thread thinking
//   switch/turn consistency:  a hungry/eating witness thread matches the
//                             turn variable's history (weak form: both
//                             witness threads never non-thinking at once)
#include <gtest/gtest.h>

#include <tuple>

#include "harness/rig.hpp"
#include "reduce/extraction.hpp"

namespace wfd::reduce {
namespace {

using dining::DinerState;
using harness::Rig;
using harness::RigOptions;

void sample_invariants(const PairExtraction& pair, sim::Time now,
                       bool subject_live) {
  const DinerState w0 = pair.box[0].at_watcher->state();
  const DinerState w1 = pair.box[1].at_watcher->state();
  const DinerState s0 = pair.box[0].at_subject->state();
  const DinerState s1 = pair.box[1].at_subject->state();

  // Lemma 9.
  ASSERT_TRUE(w0 == DinerState::kThinking || w1 == DinerState::kThinking)
      << "Lemma 9 violated at t=" << now;
  // Strengthened Lemma 9 (both witness threads never active at once).
  ASSERT_FALSE(w0 != DinerState::kThinking && w1 != DinerState::kThinking);

  if (!subject_live) return;  // subject vars frozen mid-crash are exempt

  // Lemma 2.
  for (int i = 0; i < 2; ++i) {
    const DinerState si = i == 0 ? s0 : s1;
    if (si != DinerState::kEating) {
      ASSERT_TRUE(pair.subject_threads->ping_flag(i))
          << "Lemma 2 violated for s_" << i << " at t=" << now;
    }
  }
  // Lemma 4.
  for (int i = 0; i < 2; ++i) {
    const DinerState si = i == 0 ? s0 : s1;
    if (si == DinerState::kHungry) {
      ASSERT_EQ(pair.subject_threads->trigger(), i)
          << "Lemma 4 violated for s_" << i << " at t=" << now;
    }
  }
}

using Param = std::tuple<std::uint64_t /*seed*/, bool /*crash*/,
                         bool /*scripted*/>;

class Conformance : public ::testing::TestWithParam<Param> {};

TEST_P(Conformance, LiveRunSatisfiesModelInvariants) {
  const auto [seed, crash, scripted] = GetParam();
  Rig rig(RigOptions{.seed = seed, .n = 2, .detector_lag = 25});
  std::unique_ptr<BoxFactory> factory;
  if (scripted) {
    factory = std::make_unique<ScriptedBoxFactory>(
        rig.engine, 1500, dining::BoxSemantics::kLockout);
  } else {
    factory = std::make_unique<WaitFreeBoxFactory>(
        [&rig](sim::ProcessId p) { return rig.detectors[p].get(); });
  }
  auto extraction = build_full_extraction(rig.hosts, *factory, {});
  if (crash) rig.engine.schedule_crash(1, 7000);
  rig.engine.init();
  const auto* pair = extraction.find(0, 1);
  ASSERT_NE(pair, nullptr);
  for (int slice = 0; slice < 400; ++slice) {
    rig.engine.run(250);
    sample_invariants(*pair, rig.engine.now(), rig.engine.is_live(1));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Conformance,
    ::testing::Combine(::testing::Values(601ull, 602ull, 603ull),
                       ::testing::Bool(), ::testing::Bool()),
    [](const ::testing::TestParamInfo<Param>& info) {
      return "Seed" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "Crash" : "NoCrash") +
             (std::get<2>(info.param) ? "Scripted" : "Real");
    });

}  // namespace
}  // namespace wfd::reduce
