// Total-order broadcast tests: agreement on log contents AND order across
// processes, under concurrency, crashes, and lying detectors — including
// the full stack on the detector extracted from dining.
#include <gtest/gtest.h>

#include <memory>

#include "consensus/total_order.hpp"
#include "harness/rig.hpp"
#include "reduce/extraction.hpp"

namespace wfd::consensus {
namespace {

using harness::Rig;
using harness::RigOptions;

struct TobRig {
  Rig rig;
  std::vector<std::shared_ptr<TotalOrderBroadcast>> nodes;

  explicit TobRig(const RigOptions& options,
                  const detect::FailureDetector* const* detectors = nullptr)
      : rig(options) {
    TotalOrderConfig config;
    config.rbcast_port = 400;
    config.consensus_base = 500;
    config.max_slots = 16;
    for (sim::ProcessId p = 0; p < options.n; ++p) {
      config.members.push_back(p);
    }
    for (std::uint32_t m = 0; m < options.n; ++m) {
      auto node = std::make_shared<TotalOrderBroadcast>(
          *rig.hosts[m], config, m,
          detectors != nullptr ? detectors[m] : rig.detectors[m].get());
      rig.hosts[m]->add_component(node, {});
      nodes.push_back(node);
    }
  }

  bool run_until_delivered(std::uint64_t count, std::uint64_t max_steps) {
    return rig.engine.run_until(
        [&] {
          for (std::uint32_t m = 0; m < nodes.size(); ++m) {
            if (rig.engine.is_live(m) && nodes[m]->delivered_count() < count) {
              return false;
            }
          }
          return true;
        },
        max_steps, 64);
  }
};

/// Submits a burst of payloads once the run starts.
class Submitter final : public sim::Component {
 public:
  Submitter(TotalOrderBroadcast& node, std::vector<std::uint64_t> bodies)
      : node_(node), bodies_(std::move(bodies)) {}
  void on_tick(sim::Context& ctx) override {
    if (next_ < bodies_.size()) node_.submit(ctx, bodies_[next_++]);
  }

 private:
  TotalOrderBroadcast& node_;
  std::vector<std::uint64_t> bodies_;
  std::size_t next_ = 0;
};

TEST(TotalOrder, AllProcessesAgreeOnTheLog) {
  TobRig tob(RigOptions{.seed = 91, .n = 3});
  // Concurrent submissions from everyone.
  for (std::uint32_t m = 0; m < 3; ++m) {
    auto submitter = std::make_shared<Submitter>(
        *tob.nodes[m], std::vector<std::uint64_t>{m * 10 + 1, m * 10 + 2});
    tob.rig.hosts[m]->add_component(submitter, {});
  }
  tob.rig.engine.init();
  ASSERT_TRUE(tob.run_until_delivered(6, 2000000));
  // Same log everywhere: same (origin, body) in the same slots.
  for (std::uint32_t m = 1; m < 3; ++m) {
    ASSERT_GE(tob.nodes[m]->log().size(), 6u);
    for (std::size_t slot = 0; slot < 6; ++slot) {
      EXPECT_EQ(tob.nodes[0]->log()[slot], tob.nodes[m]->log()[slot])
          << "slot " << slot << " differs at process " << m;
    }
  }
  // No duplicates: six distinct bodies.
  std::set<std::uint64_t> bodies;
  for (std::size_t slot = 0; slot < 6; ++slot) {
    bodies.insert(tob.nodes[0]->log()[slot].second);
  }
  EXPECT_EQ(bodies.size(), 6u);
}

TEST(TotalOrder, SurvivesSubmitterCrash) {
  TobRig tob(RigOptions{.seed = 92, .n = 3, .detector_lag = 25});
  auto submitter0 = std::make_shared<Submitter>(
      *tob.nodes[0], std::vector<std::uint64_t>{11, 12});
  tob.rig.hosts[0]->add_component(submitter0, {});
  auto submitter1 = std::make_shared<Submitter>(
      *tob.nodes[1], std::vector<std::uint64_t>{21, 22});
  tob.rig.hosts[1]->add_component(submitter1, {});
  // Process 0 crashes after its submissions are likely in flight.
  tob.rig.engine.schedule_crash(0, 2000);
  tob.rig.engine.init();
  // Survivors must agree on whatever got ordered (at least 1's two).
  ASSERT_TRUE(tob.run_until_delivered(2, 2000000));
  tob.rig.engine.run(200000);
  ASSERT_GE(tob.nodes[1]->log().size(), 2u);
  const std::size_t common =
      std::min(tob.nodes[1]->log().size(), tob.nodes[2]->log().size());
  EXPECT_GE(common, 2u);
  for (std::size_t slot = 0; slot < common; ++slot) {
    EXPECT_EQ(tob.nodes[1]->log()[slot], tob.nodes[2]->log()[slot]);
  }
}

TEST(TotalOrder, SafeUnderDetectorMistakes) {
  RigOptions options{.seed = 93, .n = 3, .detector_lag = 25};
  options.mistakes = {{1, 0, 50, 3000}, {2, 0, 100, 2500}};
  TobRig tob(options);
  for (std::uint32_t m = 0; m < 3; ++m) {
    auto submitter = std::make_shared<Submitter>(
        *tob.nodes[m], std::vector<std::uint64_t>{100 + m});
    tob.rig.hosts[m]->add_component(submitter, {});
  }
  tob.rig.engine.init();
  ASSERT_TRUE(tob.run_until_delivered(3, 2000000));
  for (std::uint32_t m = 1; m < 3; ++m) {
    for (std::size_t slot = 0; slot < 3; ++slot) {
      EXPECT_EQ(tob.nodes[0]->log()[slot], tob.nodes[m]->log()[slot]);
    }
  }
}

TEST(TotalOrder, RunsOnExtractedDetector) {
  // The paper's chain, maximal form: dining boxes -> extracted <>P ->
  // consensus -> replicated log.
  Rig rig(RigOptions{.seed = 94, .n = 3, .detector_lag = 25});
  reduce::WaitFreeBoxFactory factory(
      [&rig](sim::ProcessId p) { return rig.detectors[p].get(); });
  auto extraction = reduce::build_full_extraction(rig.hosts, factory, {});

  TotalOrderConfig config;
  config.rbcast_port = 400;
  config.consensus_base = 500;
  config.max_slots = 8;
  config.members = {0, 1, 2};
  std::vector<std::shared_ptr<TotalOrderBroadcast>> nodes;
  for (std::uint32_t m = 0; m < 3; ++m) {
    auto node = std::make_shared<TotalOrderBroadcast>(
        *rig.hosts[m], config, m, extraction.detectors[m].get());
    rig.hosts[m]->add_component(node, {});
    nodes.push_back(node);
  }
  for (std::uint32_t m = 0; m < 3; ++m) {
    auto submitter = std::make_shared<Submitter>(
        *nodes[m], std::vector<std::uint64_t>{m + 1});
    rig.hosts[m]->add_component(submitter, {});
  }
  rig.engine.init();
  const bool done = rig.engine.run_until(
      [&] {
        return nodes[0]->delivered_count() >= 3 &&
               nodes[1]->delivered_count() >= 3 &&
               nodes[2]->delivered_count() >= 3;
      },
      3000000, 128);
  ASSERT_TRUE(done) << "replicated log over the extracted detector stalled";
  for (std::uint32_t m = 1; m < 3; ++m) {
    for (std::size_t slot = 0; slot < 3; ++slot) {
      EXPECT_EQ(nodes[0]->log()[slot], nodes[m]->log()[slot]);
    }
  }
}

}  // namespace
}  // namespace wfd::consensus
