// Engine tests: step semantics of the paper's model (Section 4) — atomic
// steps, reliable channels, crash faults, determinism of whole runs.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/engine.hpp"

namespace wfd::sim {
namespace {

/// Sends one message to a fixed peer on every step; counts receipts.
class PingCounter final : public Process {
 public:
  explicit PingCounter(ProcessId peer) : peer_(peer) {}

  void on_message(Context&, const Message& msg) override {
    ++received_;
    last_payload_ = msg.payload;
  }
  void on_step(Context& ctx) override {
    ++steps_;
    ctx.send(peer_, /*port=*/7, Payload{1, steps_, 0, 0});
  }

  std::uint64_t received() const { return received_; }
  std::uint64_t steps() const { return steps_; }
  const Payload& last_payload() const { return last_payload_; }

 private:
  ProcessId peer_;
  std::uint64_t received_ = 0;
  std::uint64_t steps_ = 0;
  Payload last_payload_{};
};

TEST(Engine, DeliversEveryMessageToCorrectProcess) {
  Engine engine({.seed = 1});
  engine.add_process(std::make_unique<PingCounter>(1));
  engine.add_process(std::make_unique<PingCounter>(0));
  engine.set_delay_model(std::make_unique<UniformDelay>(1, 10));
  engine.init();
  engine.run(2000);
  // Quiesce: stop producing by running until queues drain cannot happen here
  // (every step sends), so instead check the reliability invariant:
  // delivered + in transit == sent.
  const auto& stats = engine.stats();
  EXPECT_EQ(stats.messages_delivered + engine.in_transit_count(),
            stats.messages_sent);
  EXPECT_GT(stats.messages_delivered, 0u);
}

TEST(Engine, RunIsDeterministicGivenSeed) {
  auto run_once = [](std::uint64_t seed) {
    Engine engine({.seed = seed});
    engine.add_process(std::make_unique<PingCounter>(1));
    engine.add_process(std::make_unique<PingCounter>(0));
    engine.set_delay_model(std::make_unique<UniformDelay>(1, 6));
    engine.init();
    engine.run(1500);
    auto& p0 = engine.process_as<PingCounter>(0);
    auto& p1 = engine.process_as<PingCounter>(1);
    return std::tuple{p0.steps(), p0.received(), p1.steps(), p1.received(),
                      engine.stats().messages_sent};
  };
  EXPECT_EQ(run_once(123), run_once(123));
  EXPECT_NE(run_once(123), run_once(456));
}

TEST(Engine, CrashedProcessTakesNoSteps) {
  Engine engine({.seed = 2});
  engine.add_process(std::make_unique<PingCounter>(1));
  engine.add_process(std::make_unique<PingCounter>(0));
  engine.schedule_crash(0, 100);
  engine.init();
  engine.run(3000);
  auto& crashed = engine.process_as<PingCounter>(0);
  auto& survivor = engine.process_as<PingCounter>(1);
  EXPECT_FALSE(engine.is_live(0));
  EXPECT_TRUE(engine.is_live(1));
  EXPECT_LT(crashed.steps(), 110u);
  EXPECT_GT(survivor.steps(), 1000u);
}

TEST(Engine, MessagesToCrashedProcessAreDropped) {
  Engine engine({.seed = 3});
  engine.add_process(std::make_unique<PingCounter>(1));
  engine.add_process(std::make_unique<PingCounter>(0));
  engine.schedule_crash(1, 50);
  engine.init();
  engine.run(2000);
  const auto& stats = engine.stats();
  EXPECT_GT(stats.messages_dropped, 0u);
  EXPECT_EQ(stats.messages_delivered + stats.messages_dropped +
                engine.in_transit_count(),
            stats.messages_sent);
}

TEST(Engine, AllCrashedStopsRun) {
  Engine engine({.seed = 4});
  engine.add_process(std::make_unique<PingCounter>(1));
  engine.add_process(std::make_unique<PingCounter>(0));
  engine.schedule_crash(0, 10);
  engine.schedule_crash(1, 10);
  engine.init();
  const std::uint64_t executed = engine.run(1000);
  EXPECT_LT(executed, 1000u);
}

TEST(Engine, RunUntilStopsAtPredicate) {
  Engine engine({.seed = 5});
  engine.add_process(std::make_unique<PingCounter>(1));
  engine.add_process(std::make_unique<PingCounter>(0));
  engine.init();
  auto& p0 = engine.process_as<PingCounter>(0);
  const bool reached =
      engine.run_until([&] { return p0.steps() >= 10; }, 10000);
  EXPECT_TRUE(reached);
  EXPECT_GE(p0.steps(), 10u);
  EXPECT_LT(p0.steps(), 30u);  // stopped promptly, not at the cap
}

TEST(Engine, RunUntilReportsFailureAtCap) {
  Engine engine({.seed = 6});
  engine.add_process(std::make_unique<PingCounter>(1));
  engine.add_process(std::make_unique<PingCounter>(0));
  engine.init();
  EXPECT_FALSE(engine.run_until([] { return false; }, 100));
}

TEST(Engine, CrashEventAppearsInTrace) {
  Engine engine({.seed = 7, .trace_capacity = 100000});
  engine.add_process(std::make_unique<PingCounter>(1));
  engine.add_process(std::make_unique<PingCounter>(0));
  engine.schedule_crash(1, 25);
  engine.init();
  engine.run(100);
  bool saw_crash = false;
  for (const Event& event : engine.trace().events()) {
    if (event.kind == EventKind::kCrash) {
      EXPECT_EQ(event.pid, 1u);
      EXPECT_GE(event.time, 25u);
      saw_crash = true;
    }
  }
  EXPECT_TRUE(saw_crash);
}

TEST(Engine, ObserversReceiveEvents) {
  Engine engine({.seed = 8});
  engine.add_process(std::make_unique<PingCounter>(1));
  engine.add_process(std::make_unique<PingCounter>(0));
  std::uint64_t sends = 0;
  engine.trace().subscribe([&](const Event& event) {
    if (event.kind == EventKind::kSend) ++sends;
  });
  engine.init();
  engine.run(200);
  EXPECT_EQ(sends, engine.stats().messages_sent);
}

TEST(Engine, GroundTruthAccessors) {
  Engine engine({.seed = 9});
  engine.add_process(std::make_unique<PingCounter>(1));
  engine.add_process(std::make_unique<PingCounter>(0));
  engine.schedule_crash(1, 40);
  engine.init();
  EXPECT_TRUE(engine.is_correct(0));
  EXPECT_FALSE(engine.is_correct(1));
  EXPECT_EQ(engine.crash_time(1), 40u);
  EXPECT_EQ(engine.crash_time(0), kNever);
  EXPECT_TRUE(engine.is_live(1));  // not yet crashed
  engine.run(100);
  EXPECT_FALSE(engine.is_live(1));
}

TEST(Engine, AddProcessAfterInitThrows) {
  Engine engine({.seed = 10});
  engine.add_process(std::make_unique<PingCounter>(0));
  engine.init();
  EXPECT_THROW(engine.add_process(std::make_unique<PingCounter>(0)),
               std::logic_error);
}

}  // namespace
}  // namespace wfd::sim
