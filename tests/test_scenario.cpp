// Scenario DSL tests: strict schema-v1 parsing (unknown keys are errors at
// every level, path-qualified), canonical round-trip serialization, the
// three engine adapters, and the hardened .repro surface that now shares
// the same versioned-strictness rules. The adapter-equivalence suite pins
// the API-redesign contract: a scenario routed through to_fuzz_config is
// bit-identical — same signature, same verdict, same stats — to the
// hand-built FuzzConfig it replaces.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz/config.hpp"
#include "fuzz/oracles.hpp"
#include "scenario/adapters.hpp"
#include "scenario/scenario.hpp"
#include "util/json.hpp"

namespace wfd {
namespace {

/// Minimal valid scenario text, mutated by the error-path tests.
std::string base_scenario() {
  return R"({
    "schema_version": 1,
    "name": "base",
    "seed": 1,
    "target": "scripted_extraction",
    "topology": {"graph": "ring", "n": 2},
    "steps": 60000,
    "expect": {"sim": {"verdict": "clean"}}
  })";
}

scenario::Scenario parse_ok(const std::string& text) {
  scenario::Scenario out;
  std::string error;
  EXPECT_TRUE(scenario::parse_scenario(text, &out, &error)) << error;
  return out;
}

std::string parse_error(const std::string& text) {
  scenario::Scenario out;
  std::string error;
  EXPECT_FALSE(scenario::parse_scenario(text, &out, &error));
  EXPECT_FALSE(error.empty());
  return error;
}

TEST(ScenarioParse, MinimalScenarioDefaults) {
  const scenario::Scenario s = parse_ok(base_scenario());
  EXPECT_EQ(s.name, "base");
  EXPECT_EQ(s.config.seed, 1u);
  EXPECT_EQ(s.config.target, fuzz::TargetKind::kScriptedExtraction);
  EXPECT_EQ(s.config.n, 2u);
  EXPECT_EQ(s.config.steps, 60000u);
  // Untouched sections keep FuzzConfig defaults.
  EXPECT_EQ(s.config.scheduler, fuzz::SchedulerKind::kRandom);
  EXPECT_EQ(s.config.delay, fuzz::DelayKind::kUniform);
  EXPECT_EQ(s.config.detector_lag, 20u);
  EXPECT_TRUE(s.supports_sim());
  EXPECT_FALSE(s.supports_mc());
  EXPECT_FALSE(s.supports_fuzz());
}

TEST(ScenarioParse, MissingSchemaVersionFails) {
  const std::string error = parse_error(R"({
    "name": "x", "seed": 1, "target": "dining",
    "topology": {"graph": "ring", "n": 2}, "steps": 100,
    "expect": {"sim": {"verdict": "clean"}}
  })");
  EXPECT_NE(error.find("schema_version"), std::string::npos) << error;
}

TEST(ScenarioParse, ForeignSchemaVersionFails) {
  std::string text = base_scenario();
  text.replace(text.find("\"schema_version\": 1"), 19, "\"schema_version\": 2");
  const std::string error = parse_error(text);
  EXPECT_NE(error.find("unsupported schema_version 2"), std::string::npos)
      << error;
}

TEST(ScenarioParse, UnknownTopLevelKeyFails) {
  std::string text = base_scenario();
  text.insert(text.find("\"name\""), "\"topologee\": {}, ");
  const std::string error = parse_error(text);
  EXPECT_NE(error.find("unknown key \"topologee\""), std::string::npos)
      << error;
}

TEST(ScenarioParse, UnknownNestedKeysArePathQualified) {
  struct Case {
    const char* anchor;
    const char* inject;
    const char* expect_path;
  };
  const Case cases[] = {
      {"\"graph\"", "\"m\": 3, ", "topology"},
      {"\"verdict\"", "\"orcale\": \"x\", ", "expect.sim"},
  };
  for (const Case& c : cases) {
    std::string text = base_scenario();
    text.insert(text.find(c.anchor), c.inject);
    const std::string error = parse_error(text);
    EXPECT_NE(error.find(c.expect_path), std::string::npos) << error;
    EXPECT_NE(error.find("unknown key"), std::string::npos) << error;
  }
}

TEST(ScenarioParse, UnknownSchedulerAndNetworkKeysFail) {
  scenario::Scenario out;
  std::string error;
  std::string text = base_scenario();
  text.insert(text.find("\"expect\""),
              "\"scheduler\": {\"kind\": \"random\", \"quantum\": 5}, ");
  ASSERT_FALSE(scenario::parse_scenario(text, &out, &error));
  EXPECT_NE(error.find("scheduler: unknown key \"quantum\""),
            std::string::npos)
      << error;

  text = base_scenario();
  text.insert(text.find("\"expect\""),
              "\"network\": {\"loss_rate\": 0.1, \"jitter\": 2}, ");
  ASSERT_FALSE(scenario::parse_scenario(text, &out, &error));
  EXPECT_NE(error.find("network: unknown key \"jitter\""), std::string::npos)
      << error;

  text = base_scenario();
  text.insert(
      text.find("\"expect\""),
      "\"network\": {\"partitions\": [{\"from\": 1, \"heal\": 2}]}, ");
  ASSERT_FALSE(scenario::parse_scenario(text, &out, &error));
  EXPECT_NE(error.find("network.partitions[]: unknown key \"heal\""),
            std::string::npos)
      << error;
}

TEST(ScenarioParse, BadEnumsFail) {
  std::string text = base_scenario();
  text.replace(text.find("scripted_extraction"), 19, "scripted_extrusion");
  EXPECT_NE(parse_error(text).find("unknown target"), std::string::npos);

  text = base_scenario();
  text.replace(text.find("\"ring\""), 6, "\"wheel\"");
  EXPECT_NE(parse_error(text).find("topology.graph"), std::string::npos);

  text = base_scenario();
  text.replace(text.find("\"verdict\": \"clean\""), 18,
               "\"verdict\": \"mostly_clean\"");
  EXPECT_NE(parse_error(text).find("expect.sim.verdict"), std::string::npos);
}

TEST(ScenarioParse, SeedsOnlyBelongToFuzz) {
  std::string text = base_scenario();
  text.replace(text.find("{\"verdict\": \"clean\"}"), 20,
               "{\"verdict\": \"clean\", \"seeds\": [1]}");
  const std::string error = parse_error(text);
  EXPECT_NE(error.find("expect.sim"), std::string::npos) << error;
  EXPECT_NE(error.find("\"seeds\""), std::string::npos) << error;
}

TEST(ScenarioParse, ExpectMustNameAnEngine) {
  std::string text = base_scenario();
  text.replace(text.find("{\"sim\": {\"verdict\": \"clean\"}}"), 29, "{}");
  EXPECT_NE(parse_error(text).find("at least one engine"), std::string::npos);
}

TEST(ScenarioParse, McRejectsNetworkAdversary) {
  std::string text = base_scenario();
  text.insert(text.find("\"expect\""), "\"network\": {\"loss_rate\": 0.2}, ");
  text.replace(text.find("{\"sim\": {\"verdict\": \"clean\"}}"), 29,
               "{\"mc\": {\"verdict\": \"clean\"}}");
  const std::string error = parse_error(text);
  EXPECT_NE(error.find("expect.mc"), std::string::npos) << error;
  EXPECT_NE(error.find("lossy-channel"), std::string::npos) << error;
}

TEST(ScenarioParse, McRejectsDiningTargets) {
  std::string text = base_scenario();
  text.replace(text.find("scripted_extraction"), 19, "dining");
  text.replace(text.find("{\"sim\": {\"verdict\": \"clean\"}}"), 29,
               "{\"mc\": {\"verdict\": \"clean\"}}");
  const std::string error = parse_error(text);
  EXPECT_NE(error.find("no model-checker abstraction"), std::string::npos)
      << error;
}

TEST(ScenarioParse, PartitionUntilZeroMeansNever) {
  std::string text = base_scenario();
  text.insert(text.find("\"expect\""),
              "\"network\": {\"partitions\": "
              "[{\"from\": 100, \"until\": 0, \"side\": [0]}]}, ");
  const scenario::Scenario s = parse_ok(text);
  ASSERT_EQ(s.config.partitions.size(), 1u);
  EXPECT_EQ(s.config.partitions[0].until, sim::kNever);
}

// ---------------------------------------------------------------------------
// Round-trip: parse -> write -> parse is structurally the identity, and the
// writer is canonical (write(parse(write(x))) == write(x) byte for byte).

void expect_round_trip(const std::string& text) {
  scenario::Scenario first;
  std::string error;
  ASSERT_TRUE(scenario::parse_scenario(text, &first, &error)) << error;
  const std::string written = scenario::scenario_to_json(first);
  scenario::Scenario second;
  ASSERT_TRUE(scenario::parse_scenario(written, &second, &error))
      << error << "\nwritten:\n"
      << written;
  const std::string rewritten = scenario::scenario_to_json(second);
  EXPECT_EQ(written, rewritten);

  util::Json a, b;
  ASSERT_TRUE(util::Json::parse(written, &a, &error)) << error;
  ASSERT_TRUE(util::Json::parse(rewritten, &b, &error)) << error;
  EXPECT_TRUE(structurally_equal(a, b));  // hidden friend, found via ADL
}

TEST(ScenarioRoundTrip, MinimalScenario) { expect_round_trip(base_scenario()); }

TEST(ScenarioRoundTrip, EverySectionPopulated) {
  expect_round_trip(R"({
    "schema_version": 1,
    "name": "kitchen-sink",
    "description": "every optional section at once",
    "seed": 42,
    "target": "scripted_dining",
    "topology": {"graph": "clique", "n": 4},
    "steps": 50000,
    "scheduler": {"kind": "pausing",
                  "pauses": [{"pid": 1, "from": 100, "until": 300}]},
    "timing": {"delay": "geometric", "min": 1, "max": 16, "geo_p": 0.25},
    "crashes": [{"pid": 3, "at": 9000}],
    "mistake_windows": [{"watcher": 0, "subject": 1, "from": 5, "until": 40}],
    "detector_lag": 35,
    "box": {"exclusive_from": 1200, "semantics": "fork_based",
            "member0_burst": 2, "grant_holdoff": 7, "never_exit_member": 2},
    "network": {"loss_rate": 0.05, "dup_rate": 0.1, "dup_spread": 4,
                "partitions": [{"from": 10, "until": 0, "side": [0, 2]},
                               {"from": 50, "until": 90, "side": [1]}]},
    "expect": {"sim": {"verdict": "violation", "oracle": "wx_safety"},
               "fuzz": {"verdict": "violation", "seeds": [7, 8, 9]}}
  })");
}

TEST(ScenarioRoundTrip, ConformanceVectors) {
  namespace fs = std::filesystem;
  std::size_t count = 0;
  for (const auto& entry : fs::directory_iterator(WFD_VECTOR_DIR)) {
    const std::string name = entry.path().filename().string();
    if (name.find(".scenario.json") == std::string::npos) continue;
    std::ifstream in(entry.path());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    SCOPED_TRACE(name);
    expect_round_trip(buffer.str());
    ++count;
  }
  EXPECT_GE(count, 12u) << "conformance corpus shrank";
}

// ---------------------------------------------------------------------------
// Adapter equivalence (the API-redesign contract): a scenario routed
// through to_fuzz_config must be bit-identical to the hand-built FuzzConfig
// it replaces — same signature, same verdict, same stats.

struct Regime {
  const char* name;
  const char* text;
  fuzz::FuzzConfig direct;
};

std::vector<Regime> equivalence_regimes() {
  std::vector<Regime> regimes;
  {
    fuzz::FuzzConfig direct;
    direct.seed = 1;
    direct.target = fuzz::TargetKind::kScriptedExtraction;
    direct.n = 2;
    direct.steps = 60000;
    direct.delay_max = 4;
    regimes.push_back({"exclusive", R"({
      "schema_version": 1, "name": "exclusive", "seed": 1,
      "target": "scripted_extraction",
      "topology": {"graph": "ring", "n": 2}, "steps": 60000,
      "timing": {"delay": "uniform", "min": 1, "max": 4},
      "expect": {"sim": {"verdict": "clean"}}
    })", direct});
  }
  {
    fuzz::FuzzConfig direct;
    direct.seed = 4;
    direct.target = fuzz::TargetKind::kScriptedExtraction;
    direct.n = 2;
    direct.steps = 60000;
    direct.delay_max = 4;
    direct.exclusive_from = 4000;
    regimes.push_back({"mistake-prefix", R"({
      "schema_version": 1, "name": "mistake-prefix", "seed": 4,
      "target": "scripted_extraction",
      "topology": {"graph": "ring", "n": 2}, "steps": 60000,
      "timing": {"delay": "uniform", "min": 1, "max": 4},
      "box": {"exclusive_from": 4000},
      "expect": {"sim": {"verdict": "clean"}}
    })", direct});
  }
  {
    fuzz::FuzzConfig direct;
    direct.seed = 6;
    direct.target = fuzz::TargetKind::kScriptedExtraction;
    direct.n = 3;
    direct.steps = 60000;
    direct.delay_max = 4;
    direct.crashes.push_back({2, 9000});
    regimes.push_back({"crash", R"({
      "schema_version": 1, "name": "crash", "seed": 6,
      "target": "scripted_extraction",
      "topology": {"graph": "ring", "n": 3}, "steps": 60000,
      "timing": {"delay": "uniform", "min": 1, "max": 4},
      "crashes": [{"pid": 2, "at": 9000}],
      "expect": {"sim": {"verdict": "clean"}}
    })", direct});
  }
  {
    fuzz::FuzzConfig direct;
    direct.seed = 1;
    direct.target = fuzz::TargetKind::kBrokenSingleInstance;
    direct.n = 2;
    direct.steps = 50000;
    regimes.push_back({"broken-single-instance", R"({
      "schema_version": 1, "name": "broken-single-instance", "seed": 1,
      "target": "broken_single_instance",
      "topology": {"graph": "ring", "n": 2}, "steps": 50000,
      "expect": {"sim": {"verdict": "violation"}}
    })", direct});
  }
  {
    fuzz::FuzzConfig direct;
    direct.seed = 20;
    direct.target = fuzz::TargetKind::kDining;
    direct.n = 4;
    direct.steps = 60000;
    direct.delay_max = 4;
    direct.partitions.push_back({1000, sim::kNever, {0}});
    regimes.push_back({"partitioned-dining", R"({
      "schema_version": 1, "name": "partitioned-dining", "seed": 20,
      "target": "dining",
      "topology": {"graph": "ring", "n": 4}, "steps": 60000,
      "timing": {"delay": "uniform", "min": 1, "max": 4},
      "network": {"partitions": [{"from": 1000, "until": 0, "side": [0]}]},
      "expect": {"sim": {"verdict": "violation"}}
    })", direct});
  }
  return regimes;
}

TEST(AdapterEquivalence, ScenarioRouteIsBitIdenticalToDirectConfig) {
  for (const Regime& regime : equivalence_regimes()) {
    SCOPED_TRACE(regime.name);
    scenario::Scenario s;
    std::string error;
    ASSERT_TRUE(scenario::parse_scenario(regime.text, &s, &error)) << error;

    const fuzz::RunResult via_scenario =
        fuzz::run_config(scenario::to_fuzz_config(s));
    const fuzz::RunResult direct = fuzz::run_config(regime.direct);

    EXPECT_EQ(via_scenario.signature, direct.signature);
    EXPECT_EQ(via_scenario.ok(), direct.ok());
    EXPECT_EQ(via_scenario.failures.size(), direct.failures.size());
    if (!via_scenario.failures.empty() && !direct.failures.empty()) {
      EXPECT_EQ(via_scenario.primary()->oracle, direct.primary()->oracle);
      EXPECT_EQ(via_scenario.primary()->at, direct.primary()->at);
    }
    EXPECT_EQ(via_scenario.stats.steps, direct.stats.steps);
    EXPECT_EQ(via_scenario.stats.messages_sent, direct.stats.messages_sent);
    EXPECT_EQ(via_scenario.stats.total_meals, direct.stats.total_meals);
  }
}

// ---------------------------------------------------------------------------
// The mc adapter's regime derivation.

scenario::Scenario scenario_for(const std::string& target, std::uint32_t n,
                                const std::string& extra = "") {
  std::string text = R"({
    "schema_version": 1, "name": "mc-derive", "seed": 1,
    "target": ")" + target + R"(",
    "topology": {"graph": "ring", "n": )" + std::to_string(n) + R"(},
    "steps": 60000, )" + extra + R"(
    "expect": {"sim": {"verdict": "clean"}}
  })";
  return parse_ok(text);
}

TEST(McAdapter, ConvergedRegimeChecksAccuracy) {
  scenario::McInstance instance;
  std::string error;
  ASSERT_TRUE(scenario::to_mc_instance(
      scenario_for("scripted_extraction", 2), &instance, &error))
      << error;
  EXPECT_EQ(instance.family, scenario::McFamily::kReduction);
  EXPECT_EQ(instance.options.mode, mc::BoxMode::kExclusive);
  EXPECT_TRUE(instance.options.check_accuracy);
  EXPECT_FALSE(instance.options.allow_crash);
  EXPECT_TRUE(instance.options.check_deadlock);
  EXPECT_EQ(instance.options.pairs, 1u);
}

TEST(McAdapter, MistakePrefixDropsAccuracy) {
  scenario::McInstance instance;
  std::string error;
  ASSERT_TRUE(scenario::to_mc_instance(
      scenario_for("scripted_extraction", 2,
                   "\"box\": {\"exclusive_from\": 4000},"),
      &instance, &error))
      << error;
  EXPECT_EQ(instance.options.mode, mc::BoxMode::kArbitrary);
  EXPECT_FALSE(instance.options.check_accuracy);
}

TEST(McAdapter, CrashPlanDropsDeadlockCheck) {
  scenario::McInstance instance;
  std::string error;
  ASSERT_TRUE(scenario::to_mc_instance(
      scenario_for("scripted_extraction", 3,
                   "\"crashes\": [{\"pid\": 2, \"at\": 9000}],"),
      &instance, &error))
      << error;
  EXPECT_TRUE(instance.options.allow_crash);
  EXPECT_FALSE(instance.options.check_deadlock);
}

TEST(McAdapter, FullExtractionComposesPairs) {
  scenario::McInstance instance;
  std::string error;
  ASSERT_TRUE(scenario::to_mc_instance(scenario_for("extraction", 3),
                                       &instance, &error))
      << error;
  EXPECT_EQ(instance.options.pairs, 2u);
}

TEST(McAdapter, AblationTargetSelectsAblationFamily) {
  scenario::McInstance instance;
  std::string error;
  ASSERT_TRUE(scenario::to_mc_instance(
      scenario_for("broken_single_instance", 2), &instance, &error))
      << error;
  EXPECT_EQ(instance.family, scenario::McFamily::kAblation);
}

TEST(McAdapter, DiningAndNetworkAreRejectedWithReasons) {
  scenario::McInstance instance;
  std::string error;
  EXPECT_FALSE(
      scenario::to_mc_instance(scenario_for("dining", 3), &instance, &error));
  EXPECT_NE(error.find("no model-checker abstraction"), std::string::npos)
      << error;

  EXPECT_FALSE(scenario::to_mc_instance(
      scenario_for("scripted_extraction", 2,
                   "\"network\": {\"loss_rate\": 0.3},"),
      &instance, &error));
  EXPECT_NE(error.find("reliable channels"), std::string::npos) << error;
}

// ---------------------------------------------------------------------------
// The hardened .repro surface (same versioned-strictness rules).

std::string hostile_repro(const std::string& mutate_from,
                          const std::string& mutate_to) {
  fuzz::ReproCase repro;
  repro.config.target = fuzz::TargetKind::kDining;
  std::string text = fuzz::repro_to_json(repro);
  const std::size_t at = text.find(mutate_from);
  EXPECT_NE(at, std::string::npos) << text;
  text.replace(at, mutate_from.size(), mutate_to);
  return text;
}

TEST(ReproSchema, MissingVersionIsAVersionedError) {
  fuzz::ReproCase out;
  std::string error;
  EXPECT_FALSE(fuzz::repro_from_json(
      hostile_repro("\"schema_version\": 1,", ""), &out, &error));
  EXPECT_NE(error.find("missing \"schema_version\""), std::string::npos)
      << error;
}

TEST(ReproSchema, ForeignVersionIsAVersionedError) {
  fuzz::ReproCase out;
  std::string error;
  EXPECT_FALSE(fuzz::repro_from_json(
      hostile_repro("\"schema_version\": 1", "\"schema_version\": 99"), &out,
      &error));
  EXPECT_NE(error.find("unsupported schema_version 99"), std::string::npos)
      << error;
}

TEST(ReproSchema, UnknownTopLevelKeyIsRejected) {
  fuzz::ReproCase out;
  std::string error;
  EXPECT_FALSE(fuzz::repro_from_json(
      hostile_repro("\"expect\":", "\"exploit\": {\"x\": 1}, \"expect\":"),
      &out, &error));
  EXPECT_NE(error.find("unknown repro key \"exploit\""), std::string::npos)
      << error;
}

TEST(ReproSchema, UnknownConfigKeyIsRejected) {
  fuzz::ReproCase out;
  std::string error;
  EXPECT_FALSE(fuzz::repro_from_json(
      hostile_repro("\"seed\":", "\"sneaky\": 7, \"seed\":"), &out, &error));
  EXPECT_NE(error.find("unknown config key \"sneaky\""), std::string::npos)
      << error;
}

TEST(ReproSchema, CurrentWriterOutputStillLoads) {
  fuzz::ReproCase repro;
  repro.config.seed = 9;
  repro.config.target = fuzz::TargetKind::kBrokenForkBased;
  repro.config.loss_rate = 0.25;
  repro.config.partitions.push_back({100, sim::kNever, {0}});
  repro.oracle = "wx_safety";
  repro.at = 1234;
  fuzz::ReproCase out;
  std::string error;
  ASSERT_TRUE(fuzz::repro_from_json(fuzz::repro_to_json(repro), &out, &error))
      << error;
  EXPECT_EQ(out.config.seed, 9u);
  EXPECT_EQ(out.config.loss_rate, 0.25);
  ASSERT_EQ(out.config.partitions.size(), 1u);
  EXPECT_EQ(out.config.partitions[0].until, sim::kNever);
  EXPECT_EQ(out.oracle, "wx_safety");
}

// ---------------------------------------------------------------------------
// The network adversary keeps run_config a pure function of the config, and
// normalize stays idempotent over the new knobs.

TEST(NetworkAdversary, RunsAreDeterministic) {
  fuzz::FuzzConfig config;
  config.seed = 18;
  config.target = fuzz::TargetKind::kDining;
  config.n = 4;
  config.steps = 20000;
  config.dup_rate = 0.2;
  config.loss_rate = 0.01;
  const fuzz::RunResult a = fuzz::run_config(config);
  const fuzz::RunResult b = fuzz::run_config(config);
  EXPECT_EQ(a.signature, b.signature);
  EXPECT_EQ(a.stats.messages_sent, b.stats.messages_sent);
  EXPECT_EQ(a.stats.messages_lost, b.stats.messages_lost);
  EXPECT_EQ(a.stats.messages_duplicated, b.stats.messages_duplicated);
  EXPECT_GT(a.stats.messages_duplicated, 0u);
}

TEST(NetworkAdversary, ConservationHoldsUnderLossAndDuplication) {
  fuzz::FuzzConfig config;
  config.seed = 5;
  config.target = fuzz::TargetKind::kDining;
  config.n = 3;
  config.steps = 15000;
  config.dup_rate = 0.3;
  config.loss_rate = 0.05;
  const fuzz::RunResult result = fuzz::run_config(config);
  const fuzz::RunStats& s = result.stats;
  EXPECT_EQ(s.messages_sent + s.messages_duplicated,
            s.messages_delivered + s.messages_dropped + s.in_transit);
  EXPECT_LE(s.messages_lost, s.messages_dropped);
  for (const fuzz::OracleFailure& failure : result.failures) {
    EXPECT_NE(failure.oracle, "engine") << failure.detail;
  }
}

TEST(NetworkAdversary, NormalizeClampsAndStaysIdempotent) {
  fuzz::FuzzConfig config;
  config.target = fuzz::TargetKind::kDining;
  config.n = 3;
  config.steps = 10000;
  config.loss_rate = 1.7;
  config.dup_rate = -0.5;
  config.dup_spread = 10000;
  config.partitions.push_back({0, 50, {0, 0, 7}});   // dup + out-of-range pid
  config.partitions.push_back({0, 50, {0, 1, 2}});   // whole population: drop
  const fuzz::FuzzConfig once = fuzz::normalize(config);
  EXPECT_LE(once.loss_rate, 0.9);
  EXPECT_GE(once.dup_rate, 0.0);
  EXPECT_LE(once.dup_spread, 64u);
  for (const sim::PartitionWindow& window : once.partitions) {
    EXPECT_FALSE(window.side.empty());
    EXPECT_LT(window.side.size(), once.n);
    EXPECT_GE(window.from, 1u);
  }
  const fuzz::FuzzConfig twice = fuzz::normalize(once);
  EXPECT_EQ(fuzz::config_to_json(once), fuzz::config_to_json(twice));
}

TEST(NetworkAdversary, SignatureUntouchedWithoutAdversary) {
  // The signature of an adversary-free config must not change because the
  // feature vector grew: has_network_adversary gates the new features.
  fuzz::FuzzConfig config;
  config.seed = 3;
  config.target = fuzz::TargetKind::kDining;
  config.n = 3;
  config.steps = 10000;
  ASSERT_FALSE(fuzz::has_network_adversary(config));
  fuzz::FuzzConfig with_net = config;
  with_net.loss_rate = 0.2;
  ASSERT_TRUE(fuzz::has_network_adversary(with_net));
  EXPECT_NE(fuzz::run_config(config).signature,
            fuzz::run_config(with_net).signature);
}

}  // namespace
}  // namespace wfd
